/**
 * @file
 * Tests for the composite front-end predictor.
 */

#include <gtest/gtest.h>

#include "bpred/frontend_predictor.hh"

namespace
{

using namespace ssmt::isa;
using ssmt::bpred::FrontEndPredictor;
using ssmt::bpred::HwPrediction;

Inst
condBr(RegIndex a, RegIndex b, int64_t target)
{
    return Inst{Opcode::Beq, kNoReg, a, b, target};
}

TEST(FrontEndTest, DirectJumpsNeverMispredict)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst j{Opcode::J, kNoReg, kNoReg, kNoReg, 7};
    HwPrediction pred = fep.predictAndTrain(3, j, true, 7);
    EXPECT_TRUE(pred.correct);
    EXPECT_EQ(pred.target, 7u);
}

TEST(FrontEndTest, CallReturnPairPredictedByRas)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst call{Opcode::Jal, kRegLink, kNoReg, kNoReg, 100};
    Inst ret{Opcode::Jr, kNoReg, kRegLink, kNoReg, 0};
    fep.predictAndTrain(10, call, true, 100);
    HwPrediction pred = fep.predictAndTrain(105, ret, true, 11);
    EXPECT_TRUE(pred.correct);
    EXPECT_EQ(pred.target, 11u);
}

TEST(FrontEndTest, NestedCallsReturnInOrder)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst call{Opcode::Jal, kRegLink, kNoReg, kNoReg, 0};
    Inst ret{Opcode::Jr, kNoReg, kRegLink, kNoReg, 0};
    fep.predictAndTrain(1, call, true, 100);
    fep.predictAndTrain(101, call, true, 200);
    EXPECT_TRUE(fep.predictAndTrain(205, ret, true, 102).correct);
    EXPECT_TRUE(fep.predictAndTrain(105, ret, true, 2).correct);
}

TEST(FrontEndTest, NonReturnIndirectUsesTargetCache)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst jr{Opcode::Jr, kNoReg, 5, kNoReg, 0};  // not the link reg
    // The target cache indexes with a target-history hash, so a
    // stable target takes a handful of repeats to converge.
    for (int i = 0; i < 40; i++)
        fep.predictAndTrain(30, jr, true, 777);
    uint64_t miss_before = fep.indirectMispredicts();
    HwPrediction pred = fep.predictAndTrain(30, jr, true, 777);
    EXPECT_TRUE(pred.correct);
    EXPECT_EQ(fep.indirectMispredicts(), miss_before);
    EXPECT_EQ(fep.indirectPredictions(), 41u);
}

TEST(FrontEndTest, ConditionalBiasLearned)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst br = condBr(1, 2, 50);
    for (int i = 0; i < 64; i++)
        fep.predictAndTrain(9, br, true, 50);
    HwPrediction pred = fep.predictAndTrain(9, br, true, 50);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.correct);
    EXPECT_GT(fep.condPredictions(), 0u);
}

TEST(FrontEndTest, PredictOnlyHasNoSideEffects)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst br = condBr(1, 2, 50);
    uint64_t before = fep.condPredictions();
    (void)fep.predictOnly(9, br);
    EXPECT_EQ(fep.condPredictions(), before);
}

TEST(FrontEndTest, MispredictStatsCount)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst br = condBr(1, 2, 50);
    for (int i = 0; i < 32; i++)
        fep.predictAndTrain(9, br, true, 50);
    uint64_t miss_before = fep.condMispredicts();
    fep.predictAndTrain(9, br, false, 50);
    EXPECT_EQ(fep.condMispredicts(), miss_before + 1);
}

TEST(FrontEndTest, PredictedNotTakenBranchHasFallThroughSemantics)
{
    FrontEndPredictor fep(1024, 1024, 1024, 8);
    Inst br = condBr(1, 2, 50);
    for (int i = 0; i < 64; i++)
        fep.predictAndTrain(9, br, false, 50);
    HwPrediction pred = fep.predictOnly(9, br);
    EXPECT_FALSE(pred.taken);
}

} // namespace
