/**
 * @file
 * Tests for the shared functional-unit issue-slot pool.
 */

#include <gtest/gtest.h>

#include "cpu/fu_pool.hh"

namespace
{

using ssmt::cpu::FuPool;

TEST(FuPoolTest, GrantsUpToWidthPerCycle)
{
    FuPool fu(4, 256);
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(fu.schedule(10), 10u);
    EXPECT_EQ(fu.schedule(10), 11u);    // fifth spills to next cycle
}

TEST(FuPoolTest, SpilloverCascades)
{
    FuPool fu(1, 256);
    EXPECT_EQ(fu.schedule(5), 5u);
    EXPECT_EQ(fu.schedule(5), 6u);
    EXPECT_EQ(fu.schedule(5), 7u);
    EXPECT_EQ(fu.schedule(6), 8u);
}

TEST(FuPoolTest, IndependentCyclesDoNotInterfere)
{
    FuPool fu(2, 256);
    EXPECT_EQ(fu.schedule(100), 100u);
    EXPECT_EQ(fu.schedule(200), 200u);
    EXPECT_EQ(fu.schedule(100), 100u);
    EXPECT_EQ(fu.schedule(100), 101u);
}

TEST(FuPoolTest, RingWrapReusesSlots)
{
    FuPool fu(1, 16);
    // Cycle 3 and cycle 3+16 share a slot index; scheduling at the
    // later cycle must not be blocked by the earlier use.
    EXPECT_EQ(fu.schedule(3), 3u);
    EXPECT_EQ(fu.schedule(3 + 16), 19u);
    EXPECT_EQ(fu.schedule(3 + 32), 35u);
}

TEST(FuPoolTest, CountsGrants)
{
    FuPool fu(2, 64);
    fu.schedule(0);
    fu.schedule(0);
    fu.schedule(1);
    EXPECT_EQ(fu.slotsGranted(), 3u);
}

TEST(FuPoolDeathTest, NonPow2HorizonPanics)
{
    EXPECT_DEATH(FuPool(4, 100), "power of two");
}

/** Property: N requests at the same cycle occupy ceil(N/width)
 *  consecutive cycles. */
class FuPoolWidth : public testing::TestWithParam<int>
{
};

TEST_P(FuPoolWidth, PackingIsTight)
{
    int width = GetParam();
    FuPool fu(width, 1024);
    int requests = width * 5 + 3;
    uint64_t max_cycle = 0;
    for (int i = 0; i < requests; i++)
        max_cycle = std::max(max_cycle, fu.schedule(50));
    EXPECT_EQ(max_cycle, 50u + (requests - 1) / width);
}

INSTANTIATE_TEST_SUITE_P(Widths, FuPoolWidth,
                         testing::Values(1, 2, 4, 8, 16));

} // namespace
