/**
 * @file
 * Longer-run stress and introspection tests: counter consistency
 * over multi-million-instruction runs, PRB retirement-stream
 * integrity, and the late-prediction early-recovery path.
 */

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

TEST(StressTest, ScaledRunStaysConsistent)
{
    workloads::WorkloadParams params;
    params.scale = 3;
    isa::Program prog = workloads::makeWorkload("comp", params);
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.builder.pruningEnabled = true;
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_GT(stats.retiredInsts, 700'000u);
    // Global invariants at scale.
    EXPECT_EQ(stats.spawnAttempts, stats.spawnAbortPrefix +
                                       stats.spawnNoContext +
                                       stats.spawns);
    EXPECT_LE(stats.usedMispredicts,
              stats.condBranches + stats.indirectBranches);
    EXPECT_GE(stats.cycles, stats.retiredInsts / 16);
    EXPECT_GT(stats.microPredCorrect,
              stats.microPredWrong * 3);
}

TEST(StressTest, ScaleLeavesRatesRoughlyStable)
{
    // Per-instruction rates should converge, not drift, as the run
    // extends: a leak (e.g. unbounded structure growth) would bend
    // IPC between scales.
    isa::Program small = workloads::makeWorkload("perl");
    workloads::WorkloadParams big_params;
    big_params.scale = 3;
    isa::Program big = workloads::makeWorkload("perl", big_params);
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    double ipc_small = sim::runProgram(small, cfg).ipc();
    double ipc_big = sim::runProgram(big, cfg).ipc();
    EXPECT_NEAR(ipc_big, ipc_small, 0.25 * ipc_small);
}

TEST(StressTest, PrbHoldsRetirementSuffix)
{
    isa::Program prog =
        workloads::makeSynthetic(workloads::SyntheticSpec{});
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cpu::SsmtCore core(prog, cfg);
    core.run();

    const core::Prb &prb = core.prb();
    ASSERT_GT(prb.size(), 0u);
    ASSERT_LE(prb.size(), 512u);
    // Sequence numbers strictly increase and end at the last
    // retired instruction.
    for (uint32_t pos = 1; pos < prb.size(); pos++)
        ASSERT_LT(prb.at(pos - 1).seq, prb.at(pos).seq) << pos;
    EXPECT_EQ(prb.youngest().seq, core.stats().retiredInsts);
    // Every buffered pc must be a real program location.
    for (uint32_t pos = 0; pos < prb.size(); pos++)
        ASSERT_LT(prb.at(pos).pc, prog.size());
}

TEST(StressTest, EarlyRecoveriesOccurOnLateCorrections)
{
    // comp's difficult branch resolves slowly enough for late
    // microthread predictions to rescue mispredicted fetch stalls;
    // this pins the Section 4.3.3 early-recovery path as exercised.
    isa::Program prog = workloads::makeWorkload("comp");
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_GT(stats.predLate, 0u);
    EXPECT_GT(stats.earlyRecoveries, 0u);
}

TEST(StressTest, RepeatedRunsShareNoState)
{
    // Two cores over the same program must not interact (no global
    // state anywhere in the library).
    isa::Program prog =
        workloads::makeSynthetic(workloads::SyntheticSpec{});
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cpu::SsmtCore a(prog, cfg);
    cpu::SsmtCore b(prog, cfg);
    // Interleave execution.
    while (!a.done() || !b.done()) {
        if (!a.done())
            a.tick();
        if (!b.done())
            b.tick();
    }
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.stats().spawns, b.stats().spawns);
    EXPECT_EQ(a.stats().predEarly, b.stats().predEarly);
}

} // namespace
