/**
 * @file
 * Tests for the MCB optimizations: move elimination, constant
 * propagation/folding, and dead-op elimination (paper Section 4.2.3).
 */

#include <gtest/gtest.h>

#include "core/uthread_builder.hh"
#include "isa/executor.hh"
#include "prb_fixture.hh"
#include "vpred/value_predictor.hh"

namespace
{

using namespace ssmt::core;
using namespace ssmt::isa;
using ssmt::test::PrbFiller;
using ssmt::test::pathIdOf;

class OptimizationTest : public testing::Test
{
  protected:
    Prb prb{64};
    ssmt::vpred::ValuePredictor vp{256};
    ssmt::vpred::ValuePredictor ap{256};

    BuilderConfig
    optConfig()
    {
        BuilderConfig cfg;
        cfg.moveElimination = true;
        cfg.constantPropagation = true;
        cfg.pruningEnabled = false;
        return cfg;
    }
};

TEST_F(OptimizationTest, MoveEliminated)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // r2 = mv r6; branch uses r2: the move disappears and the
    // Store_PCache reads r6 directly.
    fill.alu(10, Opcode::Add, 2, 6, kRegZero, 0);
    fill.branch(11, Opcode::Bne, 2, 0, 20, true);

    UthreadBuilder builder(optConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    ASSERT_EQ(thread->size(), 1);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::StPCache);
    EXPECT_EQ(thread->ops[0].inst.rs1, 6);
    ASSERT_EQ(thread->liveIns.size(), 1u);
    EXPECT_EQ(thread->liveIns[0], 6);
}

TEST_F(OptimizationTest, MoveChainCollapses)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.alu(10, Opcode::Add, 2, 6, kRegZero, 0);   // r2 = r6
    fill.alu(11, Opcode::Or, 3, 2, kRegZero, 0);    // r3 = r2
    fill.alui(12, Opcode::Addi, 4, 3, 0, 0);        // r4 = r3
    fill.branch(13, Opcode::Bne, 4, 0, 20, true);

    UthreadBuilder builder(optConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    ASSERT_EQ(thread->size(), 1);
    EXPECT_EQ(thread->ops[0].inst.rs1, 6);
}

TEST_F(OptimizationTest, MoveNotForwardedPastRedefinition)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.alu(10, Opcode::Add, 2, 6, kRegZero, 0);   // r2 = r6
    fill.ldi(11, 6, 42);                            // r6 redefined!
    fill.alu(12, Opcode::Add, 3, 2, 6, 0);          // r3 = r2 + r6
    fill.branch(13, Opcode::Bne, 3, 0, 20, true);

    UthreadBuilder builder(optConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    // The add must NOT read r6 for its first operand (the copy fact
    // died at pc 11); the old r6 value flows through the move.
    bool found_add = false;
    for (const MicroOp &op : thread->ops) {
        if (op.origPc == 12) {
            found_add = true;
            EXPECT_EQ(op.inst.rs1, 2);
        }
    }
    EXPECT_TRUE(found_add);
    // And the move itself must survive DCE (it is still read).
    bool found_move = false;
    for (const MicroOp &op : thread->ops)
        if (op.origPc == 10)
            found_move = true;
    EXPECT_TRUE(found_move);
}

TEST_F(OptimizationTest, ConstantsFold)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 6);
    fill.ldi(11, 2, 7);
    fill.alu(12, Opcode::Mul, 3, 1, 2, 42);
    fill.alui(13, Opcode::Addi, 4, 3, 1, 43);
    fill.branch(14, Opcode::Bne, 4, 0, 20, true);

    UthreadBuilder builder(optConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    // Everything folds to one Ldi feeding Store_PCache.
    ASSERT_EQ(thread->size(), 2);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::Ldi);
    EXPECT_EQ(thread->ops[0].inst.imm, 43);
    EXPECT_EQ(thread->longestChain, 2);
}

TEST_F(OptimizationTest, RegisterZeroIsAKnownConstant)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // slti r2, r0, 5 -> constant 1.
    fill.alui(10, Opcode::Slti, 2, kRegZero, 5, 1);
    fill.branch(11, Opcode::Bne, 2, 0, 20, true);

    UthreadBuilder builder(optConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    ASSERT_EQ(thread->size(), 2);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::Ldi);
    EXPECT_EQ(thread->ops[0].inst.imm, 1);
}

TEST_F(OptimizationTest, NonConstantSourcesNotFolded)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.alui(10, Opcode::Addi, 2, 6, 5, 0);    // r6 is a live-in
    fill.branch(11, Opcode::Bne, 2, 0, 20, true);

    UthreadBuilder builder(optConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    ASSERT_EQ(thread->size(), 2);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::Addi);
}

TEST_F(OptimizationTest, LoadsNeverFolded)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 0x100);
    fill.load(11, 2, 1, 0, 0x100, 9);
    fill.branch(12, Opcode::Bne, 2, 0, 20, true);

    UthreadBuilder builder(optConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    bool has_load = false;
    for (const MicroOp &op : thread->ops)
        has_load |= op.inst.isLoad();
    EXPECT_TRUE(has_load);
}

TEST_F(OptimizationTest, OptimizedRoutineComputesSameOutcome)
{
    // Semantic check: execute the raw and optimized routines over
    // the same live-in state; the Store_PCache condition operands
    // must match.
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 100);
    fill.alu(11, Opcode::Add, 2, 1, 6, 0);      // r6 live-in
    fill.alu(12, Opcode::Or, 3, 2, kRegZero, 0);
    fill.alui(13, Opcode::Addi, 4, 3, -50, 0);
    fill.branch(14, Opcode::Blt, 4, 7, 20, true);   // r7 live-in

    auto run_routine = [](const MicroThread &thread,
                          uint64_t r6, uint64_t r7) {
        RegFile regs;
        MemoryImage mem;
        regs.write(6, r6);
        regs.write(7, r7);
        for (const MicroOp &op : thread.ops) {
            if (op.inst.op == Opcode::StPCache) {
                int64_t a = static_cast<int64_t>(
                    regs.read(op.inst.rs1));
                int64_t b = static_cast<int64_t>(
                    regs.read(op.inst.rs2));
                return a < b;   // Blt semantics
            }
            step(op.inst, op.origPc, regs, mem);
        }
        ADD_FAILURE() << "no Store_PCache reached";
        return false;
    };

    UthreadBuilder raw_builder(BuilderConfig{64, false, false, false});
    UthreadBuilder opt_builder(BuilderConfig{64, true, true, false});
    auto raw = raw_builder.build(prb, pathIdOf({5}), 1, vp, ap);
    auto opt = opt_builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(raw && opt);
    EXPECT_LT(opt->size(), raw->size());
    for (uint64_t r6 : {0ull, 5ull, 1000ull, ~0ull})
        for (uint64_t r7 : {0ull, 60ull, 2000ull})
            EXPECT_EQ(run_routine(*opt, r6, r7),
                      run_routine(*raw, r6, r7))
                << "r6=" << r6 << " r7=" << r7;
}

TEST_F(OptimizationTest, ChainShortenedByFolding)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 2);
    fill.alui(11, Opcode::Slli, 2, 1, 4, 32);
    fill.alui(12, Opcode::Addi, 3, 2, 1, 33);
    fill.alu(13, Opcode::Add, 4, 3, 6, 0);      // live-in r6 joins
    fill.branch(14, Opcode::Bne, 4, 0, 20, true);

    UthreadBuilder raw_builder(BuilderConfig{64, false, false, false});
    UthreadBuilder opt_builder(BuilderConfig{64, true, true, false});
    auto raw = raw_builder.build(prb, pathIdOf({5}), 1, vp, ap);
    auto opt = opt_builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(raw && opt);
    EXPECT_LT(opt->longestChain, raw->longestChain);
}

} // namespace
