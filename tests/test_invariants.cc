/**
 * @file
 * Tests for sim::StatsChecker: every cross-counter relation must
 * fire on a stats vector corrupted to violate exactly it, and none
 * may fire on any clean run of the 20-workload suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/invariants.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

/**
 * A realistic, invariant-clean stats vector to corrupt: one mcf_2k
 * run under the golden config. mcf exercises every counter group the
 * corruptions below need nonzero (spawns, early/late predictions,
 * builds, demotions, cache traffic).
 */
const sim::Stats &
cleanStats()
{
    static const sim::Stats stats = [] {
        sim::BatchRunner runner(1);
        std::vector<sim::BatchJob> batch{
            {"mcf_2k", workloads::makeWorkload("mcf_2k"),
             sim::goldenMachineConfig()}};
        return runner.run(batch)[0].stats;
    }();
    return stats;
}

std::vector<std::string>
flaggedRelations(const sim::Stats &stats)
{
    std::vector<std::string> names;
    for (const sim::InvariantViolation &v :
         sim::StatsChecker::check(stats))
        names.push_back(v.relation);
    std::sort(names.begin(), names.end());
    return names;
}

struct Corruption
{
    const char *label;
    std::function<void(sim::Stats &)> mutate;
    std::vector<std::string> expected;  ///< exact set of relations
};

TEST(StatsCheckerTest, CleanRunHasNoViolations)
{
    EXPECT_TRUE(flaggedRelations(cleanStats()).empty());
}

TEST(StatsCheckerTest, EachCorruptionFlagsExactlyItsRelation)
{
    const sim::Stats &base = cleanStats();
    // Preconditions the corruptions rely on: the counters being
    // pushed past a bound must be nonzero in the clean vector, or
    // the "exactly this relation" claim degenerates.
    ASSERT_GT(base.spawns, 0u);
    ASSERT_GT(base.microthreadsCompleted, 0u);
    ASSERT_GT(base.predEarly, 0u);
    ASSERT_GT(base.promotionsCompleted, 0u);
    ASSERT_GT(base.build.built, 0u);
    ASSERT_GT(base.condHwMispredicts + base.indirectHwMispredicts +
                  base.microPredWrong,
              0u);
    ASSERT_LT(base.condHwMispredicts + base.indirectHwMispredicts +
                  base.microPredWrong,
              base.condBranches + base.indirectBranches);

    const std::vector<Corruption> corruptions = {
        {"fetch bubbles exceed cycles",
         [](sim::Stats &s) { s.fetchBubbleCycles = s.cycles + 1; },
         {"fetch-bubbles-le-cycles"}},
        {"cond mispredicts exceed cond branches",
         [](sim::Stats &s) {
             s.condHwMispredicts = s.condBranches + 1;
         },
         {"cond-mispredicts-le-branches"}},
        {"indirect mispredicts exceed indirect branches",
         [](sim::Stats &s) {
             s.indirectHwMispredicts = s.indirectBranches + 1;
         },
         {"indirect-mispredicts-le-branches"}},
        {"used mispredicts exceed their sources",
         [](sim::Stats &s) {
             s.usedMispredicts = s.condHwMispredicts +
                                 s.indirectHwMispredicts +
                                 s.microPredWrong + 1;
         },
         {"used-mispredicts-source"}},
        {"used mispredicts exceed terminating branches",
         [](sim::Stats &s) {
             s.usedMispredicts =
                 s.condBranches + s.indirectBranches + 1;
         },
         // Exceeding every terminating branch necessarily also
         // exceeds the (tighter) source bound.
         {"used-mispredicts-le-term-branches",
          "used-mispredicts-source"}},
        {"oracle overrides exceed terminating branches",
         [](sim::Stats &s) {
             s.oracleOverrides =
                 s.condBranches + s.indirectBranches + 1;
         },
         {"oracle-overrides-le-term-branches"}},
        {"spawn outcomes do not sum to attempts",
         [](sim::Stats &s) { s.spawnAttempts += 1; },
         {"spawn-conservation"}},
        {"more spawn outcomes than spawns",
         [](sim::Stats &s) { s.abortsPostSpawn = s.spawns + 1; },
         {"spawn-outcomes-le-spawns"}},
        {"completed microthreads without executed ops",
         [](sim::Stats &s) {
             s.microOpsExecuted = s.microthreadsCompleted - 1;
         },
         {"completed-threads-le-microops"}},
        {"spawns without any completed promotion",
         [](sim::Stats &s) {
             s.promotionsCompleted = 0;
             s.demotions = 0;            // keep demotion bounds quiet
             s.throttleDemotions = 0;
         },
         {"spawns-require-promotion"}},
        {"more completions than promotion requests",
         [](sim::Stats &s) {
             s.promotionsCompleted =
                 s.promotionsRequested + s.rebuildRequests + 1;
         },
         {"promotions-completed-le-requests"}},
        {"build requests not accounted for",
         [](sim::Stats &s) { s.build.requests += 1; },
         {"builds-accounted"}},
        {"buildsFailed disagrees with failure breakdown",
         [](sim::Stats &s) { s.buildsFailed += 1; },
         {"build-failures-accounted"}},
        {"built routines with no ops",
         [](sim::Stats &s) {
             s.build.totalOps = s.build.built - 1;
         },
         {"built-routines-nonempty"}},
        {"more pruned routines than built",
         [](sim::Stats &s) {
             s.build.prunedRoutines = s.build.built + 1;
         },
         {"pruned-routines-le-built"}},
        {"more demotions than completed promotions",
         [](sim::Stats &s) {
             s.demotions = s.promotionsCompleted + 1;
         },
         {"demotions-le-promotions-completed"}},
        {"more throttle demotions than demotions",
         [](sim::Stats &s) {
             s.throttleDemotions = s.demotions + 1;
         },
         {"throttle-demotions-le-demotions"}},
        {"graded predictions disagree with early+late",
         [](sim::Stats &s) { s.microPredCorrect += 1; },
         {"pred-timeliness-classified"}},
        {"early predictions disagree with pcache hits",
         [](sim::Stats &s) { s.pcacheLookupHits += 1; },
         {"early-preds-eq-pcache-hits"}},
        {"more early predictions than pcache writes",
         [](sim::Stats &s) { s.pcacheWrites = s.predEarly - 1; },
         {"early-preds-le-pcache-writes"}},
        {"more recoveries than late predictions",
         [](sim::Stats &s) {
             s.earlyRecoveries = 0;
             s.bogusRecoveries = s.predLate + 1;
         },
         {"recoveries-le-late-preds"}},
        {"allocation outcomes exceed pathcache updates",
         [](sim::Stats &s) {
             s.pathCacheAllocations = s.pathCacheUpdates + 1;
             s.pathCacheAllocationsSkipped = 0;
         },
         {"pathcache-allocation-split"}},
        {"pathcache updates exceed terminating branches",
         [](sim::Stats &s) {
             s.pathCacheUpdates =
                 s.condBranches + s.indirectBranches + 1;
         },
         {"pathcache-updates-le-term-branches"}},
        {"l1d misses exceed accesses",
         [](sim::Stats &s) { s.l1dMisses = s.l1dAccesses + 1; },
         {"l1d-misses-le-accesses"}},
        {"l2 misses exceed accesses",
         [](sim::Stats &s) { s.l2Misses = s.l2Accesses + 1; },
         {"l2-misses-le-accesses"}},
    };

    for (const Corruption &c : corruptions) {
        SCOPED_TRACE(c.label);
        sim::Stats corrupt = base;
        c.mutate(corrupt);
        std::vector<std::string> expected = c.expected;
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(flaggedRelations(corrupt), expected);
    }
}

TEST(StatsCheckerTest, DescribeNamesTheRelation)
{
    sim::Stats corrupt = cleanStats();
    corrupt.l1dMisses = corrupt.l1dAccesses + 1;
    auto violations = sim::StatsChecker::check(corrupt);
    ASSERT_EQ(violations.size(), 1u);
    std::string text = sim::StatsChecker::describe(violations);
    EXPECT_NE(text.find("l1d-misses-le-accesses"), std::string::npos);
    EXPECT_NE(text.find("l1dMisses <= l1dAccesses"),
              std::string::npos);
}

TEST(StatsCheckerDeathTest, EnforcePanicsWithLabelAndRelation)
{
    sim::Stats corrupt = cleanStats();
    corrupt.spawnAttempts += 1;
    EXPECT_DEATH(sim::StatsChecker::enforce(corrupt, "mcf_2k"),
                 "mcf_2k.*spawn-conservation");
    // A clean vector must pass silently.
    sim::StatsChecker::enforce(cleanStats(), "mcf_2k");
}

TEST(StatsCheckerTest, NoFalsePositivesAcrossSuiteAndModes)
{
    // Every workload, in the golden microthread config plus the
    // three comparison modes: zero violations anywhere. (BatchRunner
    // itself enforces per job — this spells the check out and keeps
    // the coverage even if that enforcement ever moves.)
    std::vector<sim::MachineConfig> configs;
    for (sim::Mode mode :
         {sim::Mode::Microthread, sim::Mode::Baseline,
          sim::Mode::OracleDifficultPath,
          sim::Mode::OracleAllBranches}) {
        sim::MachineConfig cfg = sim::goldenMachineConfig();
        cfg.mode = mode;
        configs.push_back(cfg);
    }
    std::vector<sim::BatchJob> batch;
    for (const auto &info : workloads::allWorkloads())
        for (const auto &cfg : configs)
            batch.push_back({info.name, info.make({}), cfg});

    sim::BatchRunner runner;
    std::vector<sim::BatchResult> results = runner.run(batch);
    for (size_t i = 0; i < batch.size(); i++) {
        auto flagged = flaggedRelations(results[i].stats);
        EXPECT_TRUE(flagged.empty())
            << batch[i].name << ": " << flagged.front();
    }
}

} // namespace
