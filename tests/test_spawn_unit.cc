/**
 * @file
 * Tests for spawn-time prefix checking and the in-flight abort
 * mechanism (paper Section 4.3.2).
 */

#include <gtest/gtest.h>

#include "core/spawn_unit.hh"

namespace
{

using namespace ssmt::core;
using namespace ssmt::isa;

MicroThread
threadWith(std::vector<ExpectedBranch> prefix,
           std::vector<ExpectedBranch> expected)
{
    MicroThread t;
    t.prefix = std::move(prefix);
    t.expected = std::move(expected);
    return t;
}

TEST(PrefixMatchTest, EmptyPrefixAlwaysMatches)
{
    PathTracker tracker(16);
    MicroThread t = threadWith({}, {});
    EXPECT_TRUE(prefixMatches(t, tracker));
}

TEST(PrefixMatchTest, MatchingHistoryAccepted)
{
    PathTracker tracker(16);
    tracker.push(10 * kInstBytes);
    tracker.push(20 * kInstBytes);
    MicroThread t = threadWith({{10, 0}, {20, 0}}, {});
    EXPECT_TRUE(prefixMatches(t, tracker));
}

TEST(PrefixMatchTest, OrderSensitive)
{
    PathTracker tracker(16);
    tracker.push(20 * kInstBytes);
    tracker.push(10 * kInstBytes);
    MicroThread t = threadWith({{10, 0}, {20, 0}}, {});
    EXPECT_FALSE(prefixMatches(t, tracker));
}

TEST(PrefixMatchTest, ExtraOlderHistoryIgnored)
{
    PathTracker tracker(16);
    tracker.push(99 * kInstBytes);      // unrelated older branch
    tracker.push(10 * kInstBytes);
    tracker.push(20 * kInstBytes);
    MicroThread t = threadWith({{10, 0}, {20, 0}}, {});
    EXPECT_TRUE(prefixMatches(t, tracker));
}

TEST(PrefixMatchTest, InterveningBranchRejects)
{
    PathTracker tracker(16);
    tracker.push(10 * kInstBytes);
    tracker.push(20 * kInstBytes);
    tracker.push(99 * kInstBytes);      // a taken branch off-path
    MicroThread t = threadWith({{10, 0}, {20, 0}}, {});
    EXPECT_FALSE(prefixMatches(t, tracker));
}

TEST(PrefixMatchTest, ShortHistoryRejects)
{
    PathTracker tracker(16);
    tracker.push(20 * kInstBytes);
    MicroThread t = threadWith({{10, 0}, {20, 0}}, {});
    EXPECT_FALSE(prefixMatches(t, tracker));
}

TEST(PathMatcherTest, EmptyExpectedIsCompleteImmediately)
{
    MicroThread t = threadWith({}, {});
    PathMatcher matcher(&t);
    EXPECT_EQ(matcher.status(), PathMatcher::Status::Complete);
}

TEST(PathMatcherTest, FollowsPathToCompletion)
{
    MicroThread t = threadWith({}, {{10, 50}, {60, 80}});
    PathMatcher matcher(&t);
    EXPECT_EQ(matcher.onControlFlow(10, true, 50),
              PathMatcher::Status::Live);
    EXPECT_EQ(matcher.onControlFlow(60, true, 80),
              PathMatcher::Status::Complete);
    EXPECT_EQ(matcher.matched(), 2u);
}

TEST(PathMatcherTest, WrongTakenBranchDeviates)
{
    MicroThread t = threadWith({}, {{10, 50}});
    PathMatcher matcher(&t);
    EXPECT_EQ(matcher.onControlFlow(99, true, 100),
              PathMatcher::Status::Deviated);
}

TEST(PathMatcherTest, WrongTargetDeviates)
{
    // Same branch pc but an indirect jump went elsewhere.
    MicroThread t = threadWith({}, {{10, 50}});
    PathMatcher matcher(&t);
    EXPECT_EQ(matcher.onControlFlow(10, true, 70),
              PathMatcher::Status::Deviated);
}

TEST(PathMatcherTest, ExpectedBranchNotTakenDeviates)
{
    MicroThread t = threadWith({}, {{10, 50}});
    PathMatcher matcher(&t);
    EXPECT_EQ(matcher.onControlFlow(10, false, 0),
              PathMatcher::Status::Deviated);
}

TEST(PathMatcherTest, UnrelatedNotTakenBranchesIgnored)
{
    MicroThread t = threadWith({}, {{10, 50}});
    PathMatcher matcher(&t);
    EXPECT_EQ(matcher.onControlFlow(7, false, 0),
              PathMatcher::Status::Live);
    EXPECT_EQ(matcher.onControlFlow(8, false, 0),
              PathMatcher::Status::Live);
    EXPECT_EQ(matcher.onControlFlow(10, true, 50),
              PathMatcher::Status::Complete);
}

TEST(PathMatcherTest, DeviationIsSticky)
{
    MicroThread t = threadWith({}, {{10, 50}, {60, 80}});
    PathMatcher matcher(&t);
    matcher.onControlFlow(99, true, 100);
    EXPECT_EQ(matcher.onControlFlow(10, true, 50),
              PathMatcher::Status::Deviated);
}

TEST(PathMatcherTest, CompletionIsSticky)
{
    MicroThread t = threadWith({}, {{10, 50}});
    PathMatcher matcher(&t);
    matcher.onControlFlow(10, true, 50);
    EXPECT_EQ(matcher.onControlFlow(99, true, 100),
              PathMatcher::Status::Complete);
}

} // namespace
