/**
 * @file
 * Shared helpers for hand-constructing Post-Retirement Buffer
 * contents in builder/optimization/pruning tests.
 */

#ifndef SSMT_TESTS_PRB_FIXTURE_HH
#define SSMT_TESTS_PRB_FIXTURE_HH

#include <cstdint>
#include <vector>

#include "core/path_id.hh"
#include "core/prb.hh"
#include "isa/inst.hh"

namespace ssmt
{
namespace test
{

/** Fluent PRB filler assigning sequence numbers automatically. */
class PrbFiller
{
  public:
    explicit PrbFiller(core::Prb &prb, uint64_t first_seq = 100)
        : prb_(prb), seq_(first_seq)
    {
    }

    /** Generic entry push; returns the assigned seq. */
    uint64_t
    push(uint64_t pc, const isa::Inst &inst, uint64_t value = 0,
         uint64_t mem_addr = 0, bool taken = false,
         uint64_t target = 0, bool vp_conf = false,
         bool ap_conf = false)
    {
        core::PrbEntry entry;
        entry.seq = seq_++;
        entry.pc = pc;
        entry.inst = inst;
        entry.value = value;
        entry.memAddr = mem_addr;
        entry.taken = taken;
        entry.target = target;
        entry.vpConfident = vp_conf;
        entry.apConfident = ap_conf;
        prb_.push(entry);
        return entry.seq;
    }

    uint64_t
    taken_jump(uint64_t pc, uint64_t target)
    {
        return push(pc,
                    isa::Inst{isa::Opcode::J, isa::kNoReg,
                              isa::kNoReg, isa::kNoReg,
                              static_cast<int64_t>(target)},
                    0, 0, true, target);
    }

    uint64_t
    ldi(uint64_t pc, isa::RegIndex rd, int64_t imm,
        bool vp_conf = false)
    {
        return push(pc,
                    isa::Inst{isa::Opcode::Ldi, rd, isa::kNoReg,
                              isa::kNoReg, imm},
                    static_cast<uint64_t>(imm), 0, false, 0, vp_conf);
    }

    uint64_t
    alu(uint64_t pc, isa::Opcode op, isa::RegIndex rd,
        isa::RegIndex rs1, isa::RegIndex rs2, uint64_t value = 0,
        bool vp_conf = false)
    {
        return push(pc, isa::Inst{op, rd, rs1, rs2, 0}, value, 0,
                    false, 0, vp_conf);
    }

    uint64_t
    alui(uint64_t pc, isa::Opcode op, isa::RegIndex rd,
         isa::RegIndex rs1, int64_t imm, uint64_t value = 0,
         bool vp_conf = false)
    {
        return push(pc, isa::Inst{op, rd, rs1, isa::kNoReg, imm},
                    value, 0, false, 0, vp_conf);
    }

    uint64_t
    load(uint64_t pc, isa::RegIndex rd, isa::RegIndex base,
         int64_t off, uint64_t addr, uint64_t value = 0,
         bool vp_conf = false, bool ap_conf = false)
    {
        return push(pc,
                    isa::Inst{isa::Opcode::Ld, rd, base, isa::kNoReg,
                              off},
                    value, addr, false, 0, vp_conf, ap_conf);
    }

    uint64_t
    store(uint64_t pc, isa::RegIndex base, isa::RegIndex src,
          int64_t off, uint64_t addr)
    {
        return push(pc,
                    isa::Inst{isa::Opcode::St, isa::kNoReg, base, src,
                              off},
                    0, addr);
    }

    /** Terminating conditional branch (retired, possibly taken). */
    uint64_t
    branch(uint64_t pc, isa::Opcode op, isa::RegIndex a,
           isa::RegIndex b, uint64_t target, bool taken)
    {
        return push(pc,
                    isa::Inst{op, isa::kNoReg, a, b,
                              static_cast<int64_t>(target)},
                    0, 0, taken, target);
    }

  private:
    core::Prb &prb_;
    uint64_t seq_;
};

/** Path_Id of the given taken-branch pcs (oldest first). */
inline core::PathId
pathIdOf(std::initializer_list<uint64_t> pcs)
{
    core::PathId h = 0;
    for (uint64_t pc : pcs)
        h = core::hashStep(h, pc * isa::kInstBytes);
    return h;
}

} // namespace test
} // namespace ssmt

#endif // SSMT_TESTS_PRB_FIXTURE_HH
