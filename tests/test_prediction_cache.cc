/**
 * @file
 * Tests for the Prediction Cache (paper Section 4.3.3).
 */

#include <gtest/gtest.h>

#include "core/prediction_cache.hh"

namespace
{

using namespace ssmt::core;

TEST(PredictionCacheTest, WriteThenLookup)
{
    PredictionCache pc(8);
    pc.write(0xAB, 100, true, 55, 9);
    const PredEntry *entry = pc.lookup(0xAB, 100);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->taken);
    EXPECT_EQ(entry->target, 55u);
    EXPECT_EQ(entry->writeCycle, 9u);
}

TEST(PredictionCacheTest, KeyIsPathIdAndSeqNum)
{
    PredictionCache pc(8);
    pc.write(0xAB, 100, true, 55, 9);
    EXPECT_EQ(pc.lookup(0xAB, 101), nullptr);
    EXPECT_EQ(pc.lookup(0xAC, 100), nullptr);
}

TEST(PredictionCacheTest, OverwriteSameKey)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 5, 1);
    pc.write(1, 10, false, 6, 2);
    const PredEntry *entry = pc.lookup(1, 10);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->taken);
    EXPECT_EQ(pc.overwrites(), 1u);
    EXPECT_EQ(pc.occupancy(), 1u);
}

TEST(PredictionCacheTest, EvictsOldestSeqWhenFull)
{
    PredictionCache pc(2);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 20, true, 0, 0);
    pc.write(1, 30, true, 0, 0);    // evicts seq 10
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
    EXPECT_NE(pc.lookup(1, 20), nullptr);
    EXPECT_NE(pc.lookup(1, 30), nullptr);
    EXPECT_EQ(pc.evictions(), 1u);
}

TEST(PredictionCacheTest, ReclaimStaleCountsUnconsumed)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 20, true, 0, 0);
    pc.markConsumed(1, 10);
    pc.reclaimOlderThan(25);
    // Both reclaimed; only seq 20 was never consumed.
    EXPECT_EQ(pc.reclaimedUnconsumed(), 1u);
    EXPECT_EQ(pc.occupancy(), 0u);
}

TEST(PredictionCacheTest, ReclaimSparesYoungEntries)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 50, true, 0, 0);
    pc.reclaimOlderThan(30);
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
    EXPECT_NE(pc.lookup(1, 50), nullptr);
}

TEST(PredictionCacheTest, HitAndLookupStats)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.lookup(1, 10);
    pc.lookup(1, 99);
    EXPECT_EQ(pc.lookups(), 2u);
    EXPECT_EQ(pc.lookupHits(), 1u);
    EXPECT_EQ(pc.writes(), 1u);
}

TEST(PredictionCacheTest, ClearResetsEntries)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.clear();
    EXPECT_EQ(pc.occupancy(), 0u);
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
}

TEST(PredictionCacheTest, SmallCacheSustainsStream)
{
    // The paper's point: 128 entries suffice because stale entries
    // reclaim quickly. Simulate a moving front-end.
    PredictionCache pc(16);
    for (uint64_t seq = 0; seq < 1000; seq++) {
        pc.write(7, seq + 20, seq % 2 == 0, 0, seq);
        const PredEntry *entry = pc.lookup(7, seq + 20);
        ASSERT_NE(entry, nullptr);
        pc.markConsumed(7, seq + 20);
        pc.reclaimOlderThan(seq);
    }
    EXPECT_EQ(pc.reclaimedUnconsumed(), 0u);
    EXPECT_LE(pc.occupancy(), 16u);
}

} // namespace
