/**
 * @file
 * Tests for the Prediction Cache (paper Section 4.3.3).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "core/prediction_cache.hh"

namespace
{

using namespace ssmt::core;

TEST(PredictionCacheTest, WriteThenLookup)
{
    PredictionCache pc(8);
    pc.write(0xAB, 100, true, 55, 9);
    const PredEntry *entry = pc.lookup(0xAB, 100);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->taken);
    EXPECT_EQ(entry->target, 55u);
    EXPECT_EQ(entry->writeCycle, 9u);
}

TEST(PredictionCacheTest, KeyIsPathIdAndSeqNum)
{
    PredictionCache pc(8);
    pc.write(0xAB, 100, true, 55, 9);
    EXPECT_EQ(pc.lookup(0xAB, 101), nullptr);
    EXPECT_EQ(pc.lookup(0xAC, 100), nullptr);
}

TEST(PredictionCacheTest, OverwriteSameKey)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 5, 1);
    pc.write(1, 10, false, 6, 2);
    const PredEntry *entry = pc.lookup(1, 10);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->taken);
    EXPECT_EQ(pc.overwrites(), 1u);
    EXPECT_EQ(pc.occupancy(), 1u);
}

TEST(PredictionCacheTest, EvictsOldestSeqWhenFull)
{
    PredictionCache pc(2);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 20, true, 0, 0);
    pc.write(1, 30, true, 0, 0);    // evicts seq 10
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
    EXPECT_NE(pc.lookup(1, 20), nullptr);
    EXPECT_NE(pc.lookup(1, 30), nullptr);
    EXPECT_EQ(pc.evictions(), 1u);
}

TEST(PredictionCacheTest, ReclaimStaleCountsUnconsumed)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 20, true, 0, 0);
    pc.markConsumed(1, 10);
    pc.reclaimOlderThan(25);
    // Both reclaimed; only seq 20 was never consumed.
    EXPECT_EQ(pc.reclaimedUnconsumed(), 1u);
    EXPECT_EQ(pc.occupancy(), 0u);
}

TEST(PredictionCacheTest, ReclaimSparesYoungEntries)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 50, true, 0, 0);
    pc.reclaimOlderThan(30);
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
    EXPECT_NE(pc.lookup(1, 50), nullptr);
}

TEST(PredictionCacheTest, HitAndLookupStats)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.lookup(1, 10);
    pc.lookup(1, 99);
    EXPECT_EQ(pc.lookups(), 2u);
    EXPECT_EQ(pc.lookupHits(), 1u);
    EXPECT_EQ(pc.writes(), 1u);
}

TEST(PredictionCacheTest, ClearResetsEntries)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.clear();
    EXPECT_EQ(pc.occupancy(), 0u);
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
}

TEST(PredictionCacheTest, SetGeometryCoversCapacity)
{
    // Sets * ways must equal the capacity; odd capacities degenerate
    // to one fully-associative set (the historical organization).
    for (uint32_t capacity : {1u, 2u, 5u, 8u, 16u, 24u, 128u, 256u}) {
        PredictionCache pc(capacity);
        EXPECT_EQ(pc.numSets() * pc.assoc(), capacity) << capacity;
        EXPECT_EQ(pc.numSets() & (pc.numSets() - 1), 0u)
            << "set count must be a power of two";
        if (capacity >= 8) {
            EXPECT_GE(pc.assoc(), 4u) << capacity;
        }
    }
    EXPECT_EQ(PredictionCache(5).numSets(), 1u);
    EXPECT_EQ(PredictionCache(128).numSets(), 32u);
}

/**
 * Brute-force reference model of the set-indexed organization: each
 * set is a plain array of ways; a write picks (in order) the key
 * match, the first invalid way, or the lowest-indexed way with the
 * oldest Seq_Num.
 */
class ReferenceModel
{
  public:
    struct Way
    {
        bool valid = false;
        PathId pathId = 0;
        uint64_t seqNum = 0;
        bool taken = false;
        uint64_t target = 0;
        bool consumed = false;
    };

    ReferenceModel(uint32_t num_sets, uint32_t assoc)
        : sets_(num_sets, std::vector<Way>(assoc))
    {
    }

    /** @return true if the write evicted a valid entry. */
    bool
    write(uint32_t set, PathId id, uint64_t seq, bool taken,
          uint64_t target)
    {
        auto &ways = sets_[set];
        Way *slot = nullptr;
        for (Way &way : ways) {
            if (way.valid && way.pathId == id && way.seqNum == seq) {
                slot = &way;
                break;
            }
        }
        bool evicted = false;
        if (!slot) {
            for (Way &way : ways) {
                if (!way.valid) {
                    slot = &way;
                    break;
                }
            }
        }
        if (!slot) {
            slot = &ways[0];
            for (Way &way : ways)
                if (way.seqNum < slot->seqNum)
                    slot = &way;
            evicted = true;
        }
        *slot = Way{true, id, seq, taken, target, false};
        return evicted;
    }

    const Way *
    lookup(uint32_t set, PathId id, uint64_t seq) const
    {
        for (const Way &way : sets_[set])
            if (way.valid && way.pathId == id && way.seqNum == seq)
                return &way;
        return nullptr;
    }

    void
    markConsumed(uint32_t set, PathId id, uint64_t seq)
    {
        for (Way &way : sets_[set])
            if (way.valid && way.pathId == id && way.seqNum == seq)
                way.consumed = true;
    }

    /** @return number of unconsumed entries reclaimed. */
    uint64_t
    reclaimOlderThan(uint64_t seq)
    {
        uint64_t unconsumed = 0;
        for (auto &ways : sets_) {
            for (Way &way : ways) {
                if (way.valid && way.seqNum < seq) {
                    if (!way.consumed)
                        unconsumed++;
                    way.valid = false;
                }
            }
        }
        return unconsumed;
    }

    uint32_t
    occupancy() const
    {
        uint32_t n = 0;
        for (const auto &ways : sets_)
            for (const Way &way : ways)
                if (way.valid)
                    n++;
        return n;
    }

  private:
    std::vector<std::vector<Way>> sets_;
};

TEST(PredictionCacheTest, RandomSweepMatchesReferenceModel)
{
    // Capacity/eviction sweep: across geometries from a 2-entry
    // degenerate cache to the paper's 128-entry point, a randomized
    // write/lookup/consume/reclaim stream must agree with the
    // brute-force model on every lookup outcome, every replacement
    // victim (checked by full-content comparison), and every counter.
    for (uint32_t capacity : {2u, 5u, 8u, 16u, 24u, 128u}) {
        SCOPED_TRACE("capacity " + std::to_string(capacity));
        PredictionCache pc(capacity);
        ReferenceModel model(pc.numSets(), pc.assoc());
        std::mt19937_64 rng(0xC0FFEE + capacity);

        uint64_t front = 0;                     // front-end position
        uint64_t evictions = 0, overwrites = 0, unconsumed = 0;
        std::vector<std::pair<PathId, uint64_t>> live;

        for (int op = 0; op < 4000; op++) {
            PathId id = 1 + rng() % 6;
            uint64_t seq = front + rng() % (2 * capacity + 8);
            uint32_t set = pc.setIndex(id, seq);
            switch (rng() % 8) {
            case 0:
            case 1:
            case 2: {                           // write
                bool taken = rng() & 1;
                uint64_t target = rng() % 1024;
                bool existed = model.lookup(set, id, seq) != nullptr;
                bool evicted =
                    model.write(set, id, seq, taken, target);
                if (existed)
                    overwrites++;
                else if (evicted)
                    evictions++;
                pc.write(id, seq, taken, target, op);
                live.push_back({id, seq});
                break;
            }
            case 3:
            case 4:
            case 5: {                           // lookup a seen key
                if (live.empty())
                    break;
                auto key = live[rng() % live.size()];
                uint32_t kset = pc.setIndex(key.first, key.second);
                const PredEntry *got =
                    pc.lookup(key.first, key.second);
                const ReferenceModel::Way *want =
                    model.lookup(kset, key.first, key.second);
                ASSERT_EQ(got != nullptr, want != nullptr)
                    << "hit/miss diverges at op " << op;
                if (got) {
                    EXPECT_EQ(got->taken, want->taken);
                    EXPECT_EQ(got->target, want->target);
                }
                break;
            }
            case 6: {                           // consume a seen key
                if (live.empty())
                    break;
                auto key = live[rng() % live.size()];
                uint32_t kset = pc.setIndex(key.first, key.second);
                pc.markConsumed(key.first, key.second);
                model.markConsumed(kset, key.first, key.second);
                break;
            }
            case 7: {                           // advance + reclaim
                front += 1 + rng() % capacity;
                unconsumed += model.reclaimOlderThan(front);
                pc.reclaimOlderThan(front);
                break;
            }
            }
            ASSERT_EQ(pc.occupancy(), model.occupancy())
                << "occupancy diverges at op " << op;
        }

        // Counter parity: identical victims imply identical totals.
        EXPECT_EQ(pc.evictions(), evictions);
        EXPECT_EQ(pc.overwrites(), overwrites);
        EXPECT_EQ(pc.reclaimedUnconsumed(), unconsumed);

        // Final content parity for every key ever written.
        std::sort(live.begin(), live.end());
        live.erase(std::unique(live.begin(), live.end()), live.end());
        for (const auto &key : live) {
            uint32_t kset = pc.setIndex(key.first, key.second);
            const PredEntry *got = pc.lookup(key.first, key.second);
            const ReferenceModel::Way *want =
                model.lookup(kset, key.first, key.second);
            ASSERT_EQ(got != nullptr, want != nullptr);
            if (got) {
                EXPECT_EQ(got->taken, want->taken);
                EXPECT_EQ(got->target, want->target);
            }
        }
    }
}

TEST(PredictionCacheTest, SmallCacheSustainsStream)
{
    // The paper's point: 128 entries suffice because stale entries
    // reclaim quickly. Simulate a moving front-end.
    PredictionCache pc(16);
    for (uint64_t seq = 0; seq < 1000; seq++) {
        pc.write(7, seq + 20, seq % 2 == 0, 0, seq);
        const PredEntry *entry = pc.lookup(7, seq + 20);
        ASSERT_NE(entry, nullptr);
        pc.markConsumed(7, seq + 20);
        pc.reclaimOlderThan(seq);
    }
    EXPECT_EQ(pc.reclaimedUnconsumed(), 0u);
    EXPECT_LE(pc.occupancy(), 16u);
}

} // namespace
