/**
 * @file
 * Tests for the Prediction Cache (paper Section 4.3.3).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "core/prediction_cache.hh"

namespace
{

using namespace ssmt::core;

TEST(PredictionCacheTest, WriteThenLookup)
{
    PredictionCache pc(8);
    pc.write(0xAB, 100, true, 55, 9);
    const PredEntry *entry = pc.lookup(0xAB, 100);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->taken);
    EXPECT_EQ(entry->target, 55u);
    EXPECT_EQ(entry->writeCycle, 9u);
}

TEST(PredictionCacheTest, KeyIsPathIdAndSeqNum)
{
    PredictionCache pc(8);
    pc.write(0xAB, 100, true, 55, 9);
    EXPECT_EQ(pc.lookup(0xAB, 101), nullptr);
    EXPECT_EQ(pc.lookup(0xAC, 100), nullptr);
}

TEST(PredictionCacheTest, OverwriteSameKey)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 5, 1);
    pc.write(1, 10, false, 6, 2);
    const PredEntry *entry = pc.lookup(1, 10);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->taken);
    EXPECT_EQ(pc.overwrites(), 1u);
    EXPECT_EQ(pc.occupancy(), 1u);
}

TEST(PredictionCacheTest, EvictsOldestSeqWhenFull)
{
    PredictionCache pc(2);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 20, true, 0, 0);
    pc.write(1, 30, true, 0, 0);    // evicts seq 10
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
    EXPECT_NE(pc.lookup(1, 20), nullptr);
    EXPECT_NE(pc.lookup(1, 30), nullptr);
    EXPECT_EQ(pc.evictions(), 1u);
}

TEST(PredictionCacheTest, ReclaimStaleCountsUnconsumed)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 20, true, 0, 0);
    pc.markConsumed(1, 10);
    pc.reclaimOlderThan(25);
    // Both reclaimed; only seq 20 was never consumed.
    EXPECT_EQ(pc.reclaimedUnconsumed(), 1u);
    EXPECT_EQ(pc.occupancy(), 0u);
}

TEST(PredictionCacheTest, ReclaimSparesYoungEntries)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.write(1, 50, true, 0, 0);
    pc.reclaimOlderThan(30);
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
    EXPECT_NE(pc.lookup(1, 50), nullptr);
}

TEST(PredictionCacheTest, HitAndLookupStats)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.lookup(1, 10);
    pc.lookup(1, 99);
    EXPECT_EQ(pc.lookups(), 2u);
    EXPECT_EQ(pc.lookupHits(), 1u);
    EXPECT_EQ(pc.writes(), 1u);
}

TEST(PredictionCacheTest, ClearResetsEntries)
{
    PredictionCache pc(8);
    pc.write(1, 10, true, 0, 0);
    pc.clear();
    EXPECT_EQ(pc.occupancy(), 0u);
    EXPECT_EQ(pc.lookup(1, 10), nullptr);
}

TEST(PredictionCacheTest, SetGeometryCoversCapacity)
{
    // Sets * ways must equal the capacity; odd capacities degenerate
    // to one fully-associative set (the historical organization).
    for (uint32_t capacity : {1u, 2u, 5u, 8u, 16u, 24u, 128u, 256u}) {
        PredictionCache pc(capacity);
        EXPECT_EQ(pc.numSets() * pc.assoc(), capacity) << capacity;
        EXPECT_EQ(pc.numSets() & (pc.numSets() - 1), 0u)
            << "set count must be a power of two";
        if (capacity >= 8) {
            EXPECT_GE(pc.assoc(), 4u) << capacity;
        }
    }
    EXPECT_EQ(PredictionCache(5).numSets(), 1u);
    EXPECT_EQ(PredictionCache(128).numSets(), 32u);
}

/**
 * Brute-force reference model of the set-indexed organization: each
 * set is a plain array of ways; a write picks (in order) the key
 * match, the first invalid way, or the lowest-indexed way with the
 * oldest Seq_Num.
 */
class ReferenceModel
{
  public:
    struct Way
    {
        bool valid = false;
        PathId pathId = 0;
        uint64_t seqNum = 0;
        bool taken = false;
        uint64_t target = 0;
        bool consumed = false;
    };

    ReferenceModel(uint32_t num_sets, uint32_t assoc)
        : sets_(num_sets, std::vector<Way>(assoc))
    {
    }

    /** @return true if the write evicted a valid entry. */
    bool
    write(uint32_t set, PathId id, uint64_t seq, bool taken,
          uint64_t target)
    {
        auto &ways = sets_[set];
        Way *slot = nullptr;
        for (Way &way : ways) {
            if (way.valid && way.pathId == id && way.seqNum == seq) {
                slot = &way;
                break;
            }
        }
        bool evicted = false;
        if (!slot) {
            for (Way &way : ways) {
                if (!way.valid) {
                    slot = &way;
                    break;
                }
            }
        }
        if (!slot) {
            slot = &ways[0];
            for (Way &way : ways)
                if (way.seqNum < slot->seqNum)
                    slot = &way;
            evicted = true;
        }
        *slot = Way{true, id, seq, taken, target, false};
        return evicted;
    }

    const Way *
    lookup(uint32_t set, PathId id, uint64_t seq) const
    {
        for (const Way &way : sets_[set])
            if (way.valid && way.pathId == id && way.seqNum == seq)
                return &way;
        return nullptr;
    }

    void
    markConsumed(uint32_t set, PathId id, uint64_t seq)
    {
        for (Way &way : sets_[set])
            if (way.valid && way.pathId == id && way.seqNum == seq)
                way.consumed = true;
    }

    /** @return number of unconsumed entries reclaimed. */
    uint64_t
    reclaimOlderThan(uint64_t seq)
    {
        uint64_t unconsumed = 0;
        for (auto &ways : sets_) {
            for (Way &way : ways) {
                if (way.valid && way.seqNum < seq) {
                    if (!way.consumed)
                        unconsumed++;
                    way.valid = false;
                }
            }
        }
        return unconsumed;
    }

    uint32_t
    occupancy() const
    {
        uint32_t n = 0;
        for (const auto &ways : sets_)
            for (const Way &way : ways)
                if (way.valid)
                    n++;
        return n;
    }

  private:
    std::vector<std::vector<Way>> sets_;
};

TEST(PredictionCacheTest, RandomSweepMatchesReferenceModel)
{
    // Capacity/eviction sweep: across geometries from a 2-entry
    // degenerate cache to the paper's 128-entry point, a randomized
    // write/lookup/consume/reclaim stream must agree with the
    // brute-force model on every lookup outcome, every replacement
    // victim (checked by full-content comparison), and every counter.
    for (uint32_t capacity : {2u, 5u, 8u, 16u, 24u, 128u}) {
        SCOPED_TRACE("capacity " + std::to_string(capacity));
        PredictionCache pc(capacity);
        ReferenceModel model(pc.numSets(), pc.assoc());
        std::mt19937_64 rng(0xC0FFEE + capacity);

        uint64_t front = 0;                     // front-end position
        uint64_t evictions = 0, overwrites = 0, unconsumed = 0;
        std::vector<std::pair<PathId, uint64_t>> live;

        for (int op = 0; op < 4000; op++) {
            PathId id = 1 + rng() % 6;
            uint64_t seq = front + rng() % (2 * capacity + 8);
            uint32_t set = pc.setIndex(id, seq);
            switch (rng() % 8) {
            case 0:
            case 1:
            case 2: {                           // write
                bool taken = rng() & 1;
                uint64_t target = rng() % 1024;
                bool existed = model.lookup(set, id, seq) != nullptr;
                bool evicted =
                    model.write(set, id, seq, taken, target);
                if (existed)
                    overwrites++;
                else if (evicted)
                    evictions++;
                pc.write(id, seq, taken, target, op);
                live.push_back({id, seq});
                break;
            }
            case 3:
            case 4:
            case 5: {                           // lookup a seen key
                if (live.empty())
                    break;
                auto key = live[rng() % live.size()];
                uint32_t kset = pc.setIndex(key.first, key.second);
                const PredEntry *got =
                    pc.lookup(key.first, key.second);
                const ReferenceModel::Way *want =
                    model.lookup(kset, key.first, key.second);
                ASSERT_EQ(got != nullptr, want != nullptr)
                    << "hit/miss diverges at op " << op;
                if (got) {
                    EXPECT_EQ(got->taken, want->taken);
                    EXPECT_EQ(got->target, want->target);
                }
                break;
            }
            case 6: {                           // consume a seen key
                if (live.empty())
                    break;
                auto key = live[rng() % live.size()];
                uint32_t kset = pc.setIndex(key.first, key.second);
                pc.markConsumed(key.first, key.second);
                model.markConsumed(kset, key.first, key.second);
                break;
            }
            case 7: {                           // advance + reclaim
                front += 1 + rng() % capacity;
                unconsumed += model.reclaimOlderThan(front);
                pc.reclaimOlderThan(front);
                break;
            }
            }
            ASSERT_EQ(pc.occupancy(), model.occupancy())
                << "occupancy diverges at op " << op;
        }

        // Counter parity: identical victims imply identical totals.
        EXPECT_EQ(pc.evictions(), evictions);
        EXPECT_EQ(pc.overwrites(), overwrites);
        EXPECT_EQ(pc.reclaimedUnconsumed(), unconsumed);

        // Final content parity for every key ever written.
        std::sort(live.begin(), live.end());
        live.erase(std::unique(live.begin(), live.end()), live.end());
        for (const auto &key : live) {
            uint32_t kset = pc.setIndex(key.first, key.second);
            const PredEntry *got = pc.lookup(key.first, key.second);
            const ReferenceModel::Way *want =
                model.lookup(kset, key.first, key.second);
            ASSERT_EQ(got != nullptr, want != nullptr);
            if (got) {
                EXPECT_EQ(got->taken, want->taken);
                EXPECT_EQ(got->target, want->target);
            }
        }
    }
}

/**
 * Collect @p count distinct (PathId, SeqNum) keys that all hash into
 * @p set of @p pc. At most one key per SeqNum, scanning SeqNums
 * upward from @p min_seq, so the returned keys have strictly
 * increasing SeqNums — the within-set "oldest" is always unambiguous.
 */
std::vector<std::pair<PathId, uint64_t>>
aliasingKeys(const PredictionCache &pc, uint32_t set, size_t count,
             uint64_t min_seq)
{
    std::vector<std::pair<PathId, uint64_t>> keys;
    for (uint64_t seq = min_seq; keys.size() < count; seq++) {
        for (PathId id = 1; id <= 256; id++) {
            if (pc.setIndex(id, seq) == set) {
                keys.push_back({id, seq});
                break;
            }
        }
    }
    return keys;
}

TEST(PredictionCacheTest, AliasingKeysReplaceOldestSeqWithinSet)
{
    // The paper's 128-entry point: 32 sets x 4 ways. Keys that alias
    // into one set must contend only with each other, and the victim
    // of a full-set write must be the way holding the oldest SeqNum.
    PredictionCache pc(128);
    ASSERT_GE(pc.numSets(), 2u);
    const uint32_t set = pc.setIndex(1, 0);
    auto keys = aliasingKeys(pc, set, pc.assoc() + 2, 0);
    for (const auto &key : keys)
        ASSERT_EQ(pc.setIndex(key.first, key.second), set);

    // A control key in some other set must survive the contention.
    std::pair<PathId, uint64_t> control{0, 0};
    for (uint64_t seq = 0; control.first == 0; seq++) {
        for (PathId id = 1; id <= 256; id++) {
            if (pc.setIndex(id, seq) != set) {
                control = {id, seq};
                break;
            }
        }
    }
    pc.write(control.first, control.second, true, 777, 0);

    // Fill the set: no evictions yet, every aliasing key resident.
    for (uint32_t i = 0; i < pc.assoc(); i++)
        pc.write(keys[i].first, keys[i].second, true, i, i);
    EXPECT_EQ(pc.evictions(), 0u);
    EXPECT_EQ(pc.occupancy(), pc.assoc() + 1);
    for (uint32_t i = 0; i < pc.assoc(); i++)
        EXPECT_NE(pc.lookup(keys[i].first, keys[i].second), nullptr);

    // Each overflow write must victimize the oldest SeqNum in the
    // set — keys[] is seq-sorted, so eviction proceeds in order.
    for (size_t extra = pc.assoc(); extra < keys.size(); extra++) {
        pc.write(keys[extra].first, keys[extra].second, false, extra,
                 extra);
        EXPECT_EQ(pc.evictions(), extra - pc.assoc() + 1);
        size_t oldest_evicted = extra - pc.assoc();
        for (size_t i = 0; i <= oldest_evicted; i++) {
            EXPECT_EQ(pc.lookup(keys[i].first, keys[i].second),
                      nullptr)
                << "key " << i << " should have been evicted";
        }
        for (size_t i = oldest_evicted + 1; i <= extra; i++) {
            EXPECT_NE(pc.lookup(keys[i].first, keys[i].second),
                      nullptr)
                << "key " << i << " should be resident";
        }
    }

    // Aliasing pressure never touches the other sets.
    const PredEntry *kept = pc.lookup(control.first, control.second);
    ASSERT_NE(kept, nullptr);
    EXPECT_EQ(kept->target, 777u);
}

TEST(PredictionCacheTest, AliasingSweepMatchesReferenceModel)
{
    // Same reference-model protocol as the random sweep above, but
    // every key is drawn from a precomputed pool that aliases into a
    // single set: maximal replacement contention, zero help from the
    // other sets. Run on two geometries that actually have multiple
    // sets.
    for (uint32_t capacity : {16u, 128u}) {
        SCOPED_TRACE("capacity " + std::to_string(capacity));
        PredictionCache pc(capacity);
        ASSERT_GE(pc.numSets(), 2u);
        const uint32_t set = pc.setIndex(3, 1);
        auto pool = aliasingKeys(pc, set, 200, 0);
        ReferenceModel model(pc.numSets(), pc.assoc());
        std::mt19937_64 rng(0xA11A5 + capacity);

        size_t cursor = 0;                  // moving key-pool window
        uint64_t evictions = 0, overwrites = 0, unconsumed = 0;
        for (int op = 0; op < 3000; op++) {
            size_t lo = cursor > 12 ? cursor - 12 : 0;
            auto key = pool[lo + rng() % (cursor - lo + 1)];
            switch (rng() % 8) {
            case 0:
            case 1:
            case 2: {                       // write
                bool taken = rng() & 1;
                uint64_t target = rng() % 1024;
                bool existed =
                    model.lookup(set, key.first, key.second) !=
                    nullptr;
                bool evicted = model.write(set, key.first,
                                           key.second, taken, target);
                if (existed)
                    overwrites++;
                else if (evicted)
                    evictions++;
                pc.write(key.first, key.second, taken, target, op);
                break;
            }
            case 3:
            case 4:
            case 5: {                       // lookup
                const PredEntry *got =
                    pc.lookup(key.first, key.second);
                const ReferenceModel::Way *want =
                    model.lookup(set, key.first, key.second);
                ASSERT_EQ(got != nullptr, want != nullptr)
                    << "hit/miss diverges at op " << op;
                if (got) {
                    EXPECT_EQ(got->taken, want->taken);
                    EXPECT_EQ(got->target, want->target);
                }
                break;
            }
            case 6: {                       // consume
                pc.markConsumed(key.first, key.second);
                model.markConsumed(set, key.first, key.second);
                break;
            }
            case 7: {                       // advance + reclaim
                if (cursor + 4 < pool.size())
                    cursor += 1 + rng() % 3;
                uint64_t front = pool[lo].second;
                unconsumed += model.reclaimOlderThan(front);
                pc.reclaimOlderThan(front);
                break;
            }
            }
            ASSERT_EQ(pc.occupancy(), model.occupancy())
                << "occupancy diverges at op " << op;
        }
        EXPECT_EQ(pc.evictions(), evictions);
        EXPECT_EQ(pc.overwrites(), overwrites);
        EXPECT_EQ(pc.reclaimedUnconsumed(), unconsumed);
    }
}

TEST(PredictionCacheTest, SmallCacheSustainsStream)
{
    // The paper's point: 128 entries suffice because stale entries
    // reclaim quickly. Simulate a moving front-end.
    PredictionCache pc(16);
    for (uint64_t seq = 0; seq < 1000; seq++) {
        pc.write(7, seq + 20, seq % 2 == 0, 0, seq);
        const PredEntry *entry = pc.lookup(7, seq + 20);
        ASSERT_NE(entry, nullptr);
        pc.markConsumed(7, seq + 20);
        pc.reclaimOlderThan(seq);
    }
    EXPECT_EQ(pc.reclaimedUnconsumed(), 0u);
    EXPECT_LE(pc.occupancy(), 16u);
}

} // namespace
