/**
 * @file
 * Snapshot round-trips for the mechanism layer: path tracking and
 * difficulty training, the Prediction Cache, the PRB, MicroRAM
 * routines, the builder's accumulated stats, the path matcher and a
 * live microcontext.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/microram.hh"
#include "core/microthread.hh"
#include "core/path_cache.hh"
#include "core/path_tracker.hh"
#include "core/prb.hh"
#include "core/prediction_cache.hh"
#include "core/spawn_unit.hh"
#include "core/uthread_builder.hh"
#include "cpu/microcontext.hh"
#include "sim/snapshot.hh"

namespace
{

using namespace ssmt;

template <typename T>
std::string
snapText(const T &t, uint64_t clock = 0)
{
    sim::SnapshotWriter w;
    w.setClock(clock);
    w.beginObject();
    t.save(w);
    w.endObject();
    return w.text();
}

template <typename T>
void
snapRestore(T &t, const std::string &text, uint64_t clock = 0)
{
    sim::SnapshotReader r(text);
    r.setClock(clock);
    t.restore(r);
}

template <typename T>
std::string
roundTrip(const T &saved, T &fresh, uint64_t clock = 0)
{
    std::string text = snapText(saved, clock);
    snapRestore(fresh, text, clock);
    EXPECT_EQ(snapText(fresh, clock), text);
    return text;
}

core::MicroThread
makeThread(core::PathId id)
{
    core::MicroThread thread;
    thread.pathId = id;
    thread.pathN = 3;
    thread.branchPc = 40;
    thread.spawnPc = 10;
    thread.seqDelta = 30;
    thread.prefix = {{4, 8}, {8, 10}};
    thread.expected = {{12, 20}, {24, 32}};
    isa::Inst addi;
    addi.op = isa::Opcode::Addi;
    addi.rd = 5;
    addi.rs1 = 5;
    addi.imm = 1;
    core::MicroOp op;
    op.inst = addi;
    op.origPc = 12;
    op.branchOp = isa::Opcode::Beq;
    op.ahead = 2;
    op.prbPos = 7;
    op.vpConf = true;
    thread.ops = {op, op};
    thread.liveIns = {5, 6};
    thread.longestChain = 2;
    thread.speculatesOnMemory = true;
    return thread;
}

TEST(SnapshotRoundTrip, PathTracker)
{
    core::PathTracker a(8);
    for (uint64_t i = 0; i < 21; i++)   // wraps the ring twice
        a.push(100 + i * 4);
    core::PathTracker b(8);
    roundTrip(a, b);
    EXPECT_EQ(b.totalPushes(), a.totalPushes());
    EXPECT_EQ(b.size(), a.size());
    for (int n = 1; n <= 8; n++)
        EXPECT_EQ(b.pathId(n), a.pathId(n)) << "n=" << n;
}

TEST(SnapshotRoundTrip, PathCacheTrainingState)
{
    core::PathCache a(64, 4, 8, 0.10);
    for (uint64_t i = 0; i < 400; i++)
        a.update(i % 23 + 1, (i % 6) == 0);
    a.setPromoted(1, true);
    core::PathCache b(64, 4, 8, 0.10);
    roundTrip(a, b);
    EXPECT_EQ(b.occupancy(), a.occupancy());
    EXPECT_EQ(b.difficultCount(), a.difficultCount());
    EXPECT_EQ(b.updates(), a.updates());
    EXPECT_EQ(b.evictions(), a.evictions());
    for (core::PathId id = 1; id <= 23; id++) {
        EXPECT_EQ(b.isDifficult(id), a.isDifficult(id));
        EXPECT_EQ(b.isPromoted(id), a.isPromoted(id));
    }
}

TEST(SnapshotRoundTrip, PredictionCache)
{
    core::PredictionCache a(32);
    for (uint64_t i = 0; i < 60; i++)
        a.write(7, 100 + i, (i & 1) != 0, 500 + i, /*cycle=*/i);
    a.lookup(7, 140);
    a.markConsumed(7, 140);
    a.reclaimOlderThan(110);
    core::PredictionCache b(32);
    roundTrip(a, b);
    EXPECT_EQ(b.writes(), a.writes());
    EXPECT_EQ(b.evictions(), a.evictions());
    EXPECT_EQ(b.reclaimedUnconsumed(), a.reclaimedUnconsumed());
    EXPECT_EQ(b.occupancy(), a.occupancy());
    const core::PredEntry *ea = a.lookup(7, 150);
    const core::PredEntry *eb = b.lookup(7, 150);
    ASSERT_EQ(ea != nullptr, eb != nullptr);
    if (ea) {
        EXPECT_EQ(eb->taken, ea->taken);
        EXPECT_EQ(eb->target, ea->target);
        EXPECT_EQ(eb->writeCycle, ea->writeCycle);
    }
}

TEST(SnapshotRoundTrip, PrbRing)
{
    core::Prb a(8);
    for (uint64_t i = 0; i < 13; i++) {     // wraps
        core::PrbEntry e;
        e.seq = i;
        e.pc = 4 * i;
        e.inst.op = isa::Opcode::Add;
        e.inst.rd = 1;
        e.inst.rs1 = 2;
        e.inst.rs2 = 3;
        e.value = 100 + i;
        e.srcSeq[0] = i ? i - 1 : 0;
        e.vpConfident = (i & 1) != 0;
        a.push(e);
    }
    core::Prb b(8);
    roundTrip(a, b);
    EXPECT_EQ(b.size(), a.size());
    for (uint32_t p = 0; p < a.size(); p++) {
        EXPECT_EQ(b.at(p).seq, a.at(p).seq);
        EXPECT_EQ(b.at(p).inst, a.at(p).inst);
        EXPECT_EQ(b.at(p).value, a.at(p).value);
    }
}

TEST(SnapshotRoundTrip, MicroThreadAndMicroRam)
{
    core::MicroThread ta = makeThread(42);
    core::MicroThread tb;
    roundTrip(ta, tb);
    EXPECT_EQ(tb.pathId, ta.pathId);
    EXPECT_EQ(tb.expected, ta.expected);
    EXPECT_EQ(tb.ops.size(), ta.ops.size());
    EXPECT_EQ(tb.ops[0].inst, ta.ops[0].inst);

    core::MicroRam ra(16);
    ra.insert(makeThread(42));
    ra.insert(makeThread(7));
    ra.remove(7);
    ra.insert(makeThread(9));
    core::MicroRam rb(16);
    roundTrip(ra, rb);
    EXPECT_EQ(rb.size(), ra.size());
    EXPECT_EQ(rb.insertions(), ra.insertions());
    EXPECT_EQ(rb.removals(), ra.removals());
    ASSERT_NE(rb.find(42), nullptr);
    EXPECT_EQ(rb.find(42)->seqDelta, uint64_t{30});
    EXPECT_EQ(rb.routinesAt(10).size(), ra.routinesAt(10).size());
}

TEST(SnapshotRoundTrip, BuildStats)
{
    core::BuildStats a;
    a.requests = 10;
    a.built = 7;
    a.failScopeNotInPrb = 2;
    a.totalOps = 40;
    a.totalChain = 12;
    a.prunedSubtrees = 3;
    core::BuildStats b;
    roundTrip(a, b);
    EXPECT_EQ(b.built, a.built);
    EXPECT_DOUBLE_EQ(b.avgRoutineSize(), a.avgRoutineSize());
}

TEST(SnapshotRoundTrip, PathMatcherProgress)
{
    core::MicroThread thread = makeThread(42);
    core::PathMatcher a(&thread);
    a.onControlFlow(12, true, 20);      // matches expected[0]
    ASSERT_EQ(a.status(), core::PathMatcher::Status::Live);

    core::PathMatcher b(&thread);
    roundTrip(a, b);
    EXPECT_EQ(b.matched(), a.matched());
    EXPECT_EQ(b.status(), a.status());
    // Both matchers complete on the same remaining branch.
    EXPECT_EQ(b.onControlFlow(24, true, 32),
              a.onControlFlow(24, true, 32));
}

TEST(SnapshotRoundTrip, MicrocontextRebindsMatcher)
{
    cpu::Microcontext a;
    a.active = true;
    a.thread =
        std::make_shared<const core::MicroThread>(makeThread(42));
    a.matcher = core::PathMatcher(a.thread.get());
    a.matcher.onControlFlow(12, true, 20);
    a.regs.write(5, 77);
    a.regReady[5] = 3;
    a.nextOp = 1;
    a.opsInFlight = 1;
    a.predictedValues = {11, 22};
    a.spawnSeq = 100;
    a.targetSeq = 130;
    a.spawnCycle = 50;
    a.dispatchEligibleCycle = 52;

    cpu::Microcontext b;
    roundTrip(a, b);
    EXPECT_TRUE(b.active);
    ASSERT_NE(b.thread, nullptr);
    EXPECT_EQ(b.thread->pathId, uint64_t{42});
    EXPECT_EQ(b.matcher.matched(), a.matcher.matched());
    EXPECT_EQ(b.regs.read(5), uint64_t{77});
    EXPECT_EQ(b.nextOp, a.nextOp);
    EXPECT_FALSE(b.drained());
    // The restored matcher must be bound to the restored thread, not
    // dangling: advancing it must work and agree with the original.
    EXPECT_EQ(b.matcher.onControlFlow(24, true, 32),
              a.matcher.onControlFlow(24, true, 32));
}

} // namespace
