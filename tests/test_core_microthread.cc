/**
 * @file
 * End-to-end tests of the difficult-path microthreading mechanism on
 * the synthetic kernel with known path difficulty.
 */

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "isa/executor.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

workloads::SyntheticSpec
hardSpec()
{
    workloads::SyntheticSpec spec;
    spec.numSites = 4;
    spec.elemsPerSite = 64;
    spec.takenPercent = {0, 100, 50, 50};   // two hard sites
    spec.iters = 120;
    return spec;
}

sim::MachineConfig
mtConfig()
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    return cfg;
}

TEST(MicrothreadE2E, MechanismEngages)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    cpu::SsmtCore core(prog, mtConfig());
    const sim::Stats &stats = core.run();
    EXPECT_GT(stats.promotionsRequested, 0u);
    EXPECT_GT(stats.promotionsCompleted, 0u);
    EXPECT_GT(stats.spawnAttempts, 0u);
    EXPECT_GT(stats.spawns, 0u);
    EXPECT_GT(stats.microthreadsCompleted, 0u);
    EXPECT_GT(stats.microOpsExecuted, 0u);
}

TEST(MicrothreadE2E, PredictionsMostlyCorrect)
{
    // The hard branch is pre-computable from the loaded element, so
    // microthread predictions should be overwhelmingly correct even
    // though the hardware predictor flounders.
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::Stats stats = sim::runProgram(prog, mtConfig());
    uint64_t total = stats.microPredCorrect + stats.microPredWrong;
    ASSERT_GT(total, 0u);
    EXPECT_GT(stats.microPredCorrect, total * 9 / 10);
}

TEST(MicrothreadE2E, SpeedsUpDifficultKernel)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::MachineConfig cfg;
    sim::Stats base = sim::runProgram(prog, cfg);
    sim::Stats mt = sim::runProgram(prog, mtConfig());
    EXPECT_GT(base.hwMispredictRate(), 0.03);
    EXPECT_GT(sim::speedup(mt, base), 1.0);
    EXPECT_LT(mt.usedMispredictRate(), base.hwMispredictRate());
}

TEST(MicrothreadE2E, EasyKernelSeesLittleActivity)
{
    workloads::SyntheticSpec spec = hardSpec();
    spec.takenPercent = {0, 100, 0, 100};   // fully biased
    isa::Program prog = workloads::makeSynthetic(spec);
    sim::Stats stats = sim::runProgram(prog, mtConfig());
    // Nothing is difficult, so (almost) nothing is promoted; allow
    // warm-up noise.
    EXPECT_LT(stats.promotionsRequested, 4u);
}

TEST(MicrothreadE2E, ArchStateUnaffectedByMicrothreads)
{
    // Subordinate threads are speculative helpers: they must never
    // change the primary thread's architectural results.
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::MachineConfig base_cfg;
    cpu::SsmtCore base_core(prog, base_cfg);
    base_core.run();
    cpu::SsmtCore mt_core(prog, mtConfig());
    mt_core.run();
    for (int r = 0; r < isa::kNumRegs; r++) {
        EXPECT_EQ(
            mt_core.archRegs().read(static_cast<isa::RegIndex>(r)),
            base_core.archRegs().read(static_cast<isa::RegIndex>(r)))
            << "r" << r;
    }
    EXPECT_EQ(mt_core.stats().retiredInsts,
              base_core.stats().retiredInsts);
}

TEST(MicrothreadE2E, AbortMechanismFires)
{
    // Paths from the two 50% sites deviate half the time after the
    // spawn, so post-spawn aborts must occur.
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::Stats stats = sim::runProgram(prog, mtConfig());
    EXPECT_GT(stats.spawnAbortPrefix + stats.abortsPostSpawn, 0u);
}

TEST(MicrothreadE2E, TimelinessClassesPopulated)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::Stats stats = sim::runProgram(prog, mtConfig());
    EXPECT_GT(stats.predEarly + stats.predLate + stats.predUseless +
                  stats.predNeverReached,
              0u);
}

TEST(MicrothreadE2E, OverheadModeUsesNoPredictions)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::MachineConfig cfg = mtConfig();
    cfg.mode = sim::Mode::MicrothreadNoPredictions;
    sim::MachineConfig base_cfg;
    sim::Stats overhead = sim::runProgram(prog, cfg);
    sim::Stats base = sim::runProgram(prog, base_cfg);
    EXPECT_GT(overhead.spawns, 0u);
    EXPECT_EQ(overhead.predEarly, 0u);
    EXPECT_EQ(overhead.earlyRecoveries, 0u);
    EXPECT_EQ(overhead.bogusRecoveries, 0u);
    // Mispredictions are untouched by unused microthreads.
    EXPECT_EQ(overhead.usedMispredicts, base.usedMispredicts);
}

TEST(MicrothreadE2E, OracleRemovesDifficultPathMispredicts)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::MachineConfig cfg;
    sim::Stats base = sim::runProgram(prog, cfg);
    cfg.mode = sim::Mode::OracleDifficultPath;
    sim::Stats oracle = sim::runProgram(prog, cfg);
    EXPECT_GT(oracle.oracleOverrides, 0u);
    EXPECT_LT(oracle.usedMispredicts, base.usedMispredicts);
    EXPECT_GE(sim::speedup(oracle, base), 1.0);
}

TEST(MicrothreadE2E, SpawnCountsAreConsistent)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::Stats stats = sim::runProgram(prog, mtConfig());
    EXPECT_EQ(stats.spawnAttempts, stats.spawnAbortPrefix +
                                       stats.spawnNoContext +
                                       stats.spawns);
    EXPECT_LE(stats.microthreadsCompleted, stats.spawns);
    EXPECT_LE(stats.abortsPostSpawn, stats.spawns);
}

TEST(MicrothreadE2E, FewerMicrocontextsThrottleSpawns)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::MachineConfig cfg = mtConfig();
    cfg.numMicrocontexts = 1;
    sim::Stats narrow = sim::runProgram(prog, cfg);
    cfg.numMicrocontexts = 8;
    sim::Stats wide = sim::runProgram(prog, cfg);
    EXPECT_GE(wide.spawns, narrow.spawns);
    EXPECT_GE(narrow.spawnNoContext, wide.spawnNoContext);
}

TEST(MicrothreadE2E, PruningProducesPrunedRoutines)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::MachineConfig cfg = mtConfig();
    cfg.builder.pruningEnabled = true;
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_GT(stats.build.prunedSubtrees, 0u);
    // Pruned routines are no larger on average than unpruned ones
    // from the same kernel (Figure 8's direction).
    sim::MachineConfig raw = mtConfig();
    sim::Stats unpruned = sim::runProgram(prog, raw);
    EXPECT_LE(stats.build.avgLongestChain(),
              unpruned.build.avgLongestChain() + 0.01);
}

TEST(MicrothreadE2E, PathStabilityBeatsMaximalDifficulty)
{
    // The mechanism's core tension: 50%-random branches are the
    // hardest to predict but also deviate the paths themselves, so
    // spawned microthreads abort; a moderately biased branch keeps
    // paths alive and yields the larger speed-up.
    auto speedup_at = [](int bias) {
        workloads::SyntheticSpec spec = hardSpec();
        spec.takenPercent = {0, 100, bias, bias};
        isa::Program prog = workloads::makeSynthetic(spec);
        sim::MachineConfig cfg;
        sim::Stats base = sim::runProgram(prog, cfg);
        sim::Stats mt = sim::runProgram(prog, mtConfig());
        return sim::speedup(mt, base);
    };
    EXPECT_GT(speedup_at(80), 1.0);
    EXPECT_GE(speedup_at(80), speedup_at(50) - 0.02);
}

TEST(MicrothreadE2E, BuildLatencyDelaysPromotions)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    sim::MachineConfig cfg = mtConfig();
    cfg.buildLatency = 10'000'000;  // effectively never finishes
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_LE(stats.promotionsCompleted, 1u);
    EXPECT_EQ(stats.spawns, 0u);
}

} // namespace
