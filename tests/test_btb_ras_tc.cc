/**
 * @file
 * Tests for the BTB, return-address stack, and indirect target cache.
 */

#include <gtest/gtest.h>

#include <string>

#include "bpred/btb.hh"
#include "bpred/ras.hh"
#include "bpred/target_cache.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"

namespace
{

using ssmt::bpred::Btb;
using ssmt::bpred::Ras;
using ssmt::bpred::TargetCache;

TEST(BtbTest, MissThenHit)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(100).has_value());
    btb.update(100, 555);
    auto hit = btb.lookup(100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 555u);
}

TEST(BtbTest, UpdateRefreshesTarget)
{
    Btb btb(64, 4);
    btb.update(100, 1);
    btb.update(100, 2);
    EXPECT_EQ(*btb.lookup(100), 2u);
}

TEST(BtbTest, ConflictEvictionIsLru)
{
    Btb btb(8, 2);      // 4 sets; same-set stride = 4
    btb.update(0, 10);
    btb.update(4, 20);
    btb.lookup(0);      // refresh 0
    btb.update(8, 30);  // evicts 4
    EXPECT_TRUE(btb.lookup(0).has_value());
    EXPECT_FALSE(btb.lookup(4).has_value());
    EXPECT_TRUE(btb.lookup(8).has_value());
}

TEST(RasTest, LifoOrder)
{
    Ras ras(32);
    ras.push(1);
    ras.push(2);
    ras.push(3);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 1u);
    EXPECT_TRUE(ras.empty());
}

TEST(RasTest, UnderflowReturnsZero)
{
    Ras ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.top(), 0u);
}

TEST(RasTest, OverflowWrapsLikeHardware)
{
    Ras ras(4);
    for (uint64_t i = 1; i <= 6; i++)
        ras.push(i);
    // Entries 1 and 2 were overwritten; depth capped at 4.
    EXPECT_EQ(ras.size(), 4u);
    EXPECT_EQ(ras.pop(), 6u);
    EXPECT_EQ(ras.pop(), 5u);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_TRUE(ras.empty());
}

TEST(RasTest, TopPeeksWithoutPopping)
{
    Ras ras(8);
    ras.push(42);
    EXPECT_EQ(ras.top(), 42u);
    EXPECT_EQ(ras.size(), 1u);
}

TEST(RasTest, UnderflowDoesNotMovePointers)
{
    // Regression pin: pop-on-empty must be a pure no-op. A version
    // that decremented topIdx_ before the emptiness check would make
    // the next push land one slot off and corrupt LIFO order.
    Ras ras(4);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(ras.pop(), 0u);
    ras.push(7);
    ras.push(8);
    EXPECT_EQ(ras.pop(), 8u);
    EXPECT_EQ(ras.pop(), 7u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(RasTest, OverflowThenUnderflowStaysConsistent)
{
    // Wrap past depth twice, drain to empty, keep popping, refill:
    // size_ and topIdx_ must stay in lock-step through every phase.
    Ras ras(3);
    for (uint64_t i = 1; i <= 8; i++)
        ras.push(i);
    EXPECT_EQ(ras.size(), 3u);
    EXPECT_EQ(ras.pop(), 8u);
    EXPECT_EQ(ras.pop(), 7u);
    EXPECT_EQ(ras.pop(), 6u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u);
    ras.push(99);
    EXPECT_EQ(ras.top(), 99u);
    EXPECT_EQ(ras.size(), 1u);
}

TEST(RasTest, RestoreRejectsOutOfRangeIndices)
{
    // A corrupt snapshot planting topIdx/size past the configured
    // depth used to be accepted; the next push would then write out
    // of bounds. Restore must throw ParseError instead.
    Ras ras(4);
    ras.push(1);
    ras.push(2);
    ssmt::sim::SnapshotWriter w;
    w.beginObject();
    ras.save(w);
    w.endObject();
    std::string good = w.text();

    auto restoreFrom = [](const std::string &text) {
        Ras fresh(4);
        ssmt::sim::SnapshotReader r(text);
        fresh.restore(r);
    };
    restoreFrom(good);      // sanity: the untampered document loads

    for (const char *key : {"\"topIdx\"", "\"size\""}) {
        std::string doc = good;
        size_t at = doc.find(key);
        ASSERT_NE(at, std::string::npos) << key;
        size_t colon = doc.find(':', at);
        size_t end = doc.find_first_of(",}", colon);
        doc.replace(colon + 1, end - colon - 1, "9");
        try {
            restoreFrom(doc);
            FAIL() << "expected ParseError for " << key;
        } catch (const ssmt::sim::SimError &err) {
            EXPECT_EQ(err.code(), ssmt::sim::ErrorCode::ParseError);
        }
    }
}

TEST(RasDeathTest, ZeroDepthPanics)
{
    EXPECT_DEATH(Ras(0), "depth");
}

TEST(TargetCacheTest, LearnsStableTarget)
{
    TargetCache tc(1024);
    for (int i = 0; i < 8; i++)
        tc.update(50, 900);
    EXPECT_EQ(tc.predict(50), 900u);
}

TEST(TargetCacheTest, HistoryDisambiguatesContexts)
{
    // One indirect branch alternating between two targets in a
    // fixed pattern: path-history indexing should learn both.
    TargetCache tc(64 * 1024);
    int correct = 0;
    for (int i = 0; i < 2000; i++) {
        uint64_t target = (i % 2) ? 111 : 222;
        if (i > 100 && tc.predict(50) == target)
            correct++;
        tc.update(50, target);
    }
    EXPECT_GT(correct, 1700);
}

} // namespace
