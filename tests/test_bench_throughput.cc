/**
 * @file
 * Tests for the throughput-benchmark harness
 * (sim/throughput_report.hh, the engine behind
 * bench/bench_throughput.cc): the ssmt-throughput-v1 emit/parse
 * round trip, --jobs invariance of the reported *simulated* counts
 * (wall-clock fields are explicitly not compared), the advisory
 * tolerance comparison CI runs against the committed baseline, and
 * the committed results/BENCH_throughput.json itself — which must
 * parse and carry both sides of its before/after claim.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/golden.hh"
#include "sim/throughput_report.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

sim::ThroughputReport
fabricatedReport()
{
    sim::ThroughputReport report;
    report.jobs = 1;
    report.repeat = 3;
    report.scale = 2;
    report.machine.hostThreads = 8;
    report.machine.pointerBits = 64;
    report.machine.compiler = "gcc 12.2.0";
    report.machine.buildType = "release";
    report.suiteWallSeconds = 12.25;
    report.geomeanMips = 4.5;
    report.geomeanCyclesPerSec = 3.25e6;
    report.baseline.present = true;
    report.baseline.note = "pre-change reference";
    report.baseline.geomeanMips = 2.25;
    sim::ThroughputCell a;
    a.workload = "go";
    a.mode = "baseline";
    a.retiredInsts = 300405;
    a.cycles = 390128;
    a.bestSeconds = 0.0712;
    a.mips = 4.22;
    a.cyclesPerSec = 5.48e6;
    sim::ThroughputCell b;
    b.workload = "mcf_2k";
    b.mode = "microthread";
    b.retiredInsts = 2000;
    b.cycles = 4096;
    b.bestSeconds = 0.25;
    b.mips = 0.008;
    b.cyclesPerSec = 16384;
    report.cells = {a, b};
    return report;
}

TEST(ThroughputReport, JsonEmitParseRoundTrip)
{
    sim::ThroughputReport in = fabricatedReport();
    std::string doc = sim::throughputJson(in);

    sim::ThroughputReport out;
    std::string err;
    ASSERT_TRUE(sim::parseThroughput(doc, out, &err)) << err;
    EXPECT_EQ(out.jobs, in.jobs);
    EXPECT_EQ(out.repeat, in.repeat);
    EXPECT_EQ(out.scale, in.scale);
    EXPECT_EQ(out.machine.hostThreads, in.machine.hostThreads);
    EXPECT_EQ(out.machine.pointerBits, in.machine.pointerBits);
    EXPECT_EQ(out.machine.compiler, in.machine.compiler);
    EXPECT_EQ(out.machine.buildType, in.machine.buildType);
    EXPECT_TRUE(out.baseline.present);
    EXPECT_EQ(out.baseline.note, in.baseline.note);
    EXPECT_DOUBLE_EQ(out.baseline.geomeanMips,
                     in.baseline.geomeanMips);
    ASSERT_EQ(out.cells.size(), in.cells.size());
    for (size_t i = 0; i < in.cells.size(); i++) {
        EXPECT_EQ(out.cells[i].workload, in.cells[i].workload);
        EXPECT_EQ(out.cells[i].mode, in.cells[i].mode);
        EXPECT_EQ(out.cells[i].retiredInsts,
                  in.cells[i].retiredInsts);
        EXPECT_EQ(out.cells[i].cycles, in.cells[i].cycles);
    }
    // Re-emission is byte-stable: parse . emit is the identity on
    // emitted documents.
    EXPECT_EQ(sim::throughputJson(out), doc);
}

TEST(ThroughputReport, BaselineObjectIsOptional)
{
    sim::ThroughputReport in = fabricatedReport();
    in.baseline = sim::ThroughputBaseline{};
    std::string doc = sim::throughputJson(in);
    EXPECT_EQ(doc.find("\"baseline\":"), std::string::npos);
    sim::ThroughputReport out;
    ASSERT_TRUE(sim::parseThroughput(doc, out));
    EXPECT_FALSE(out.baseline.present);
    EXPECT_EQ(sim::throughputJson(out), doc);
}

TEST(ThroughputReport, ParseRejectsBadDocuments)
{
    sim::ThroughputReport out;
    std::string err;
    EXPECT_FALSE(sim::parseThroughput("", out, &err));
    EXPECT_FALSE(sim::parseThroughput("[]", out, &err));
    EXPECT_FALSE(sim::parseThroughput(
        "{\"schema\": \"ssmt-bench-v1\", \"cells\": []}", out, &err));
    EXPECT_NE(err.find("schema"), std::string::npos);
    EXPECT_FALSE(sim::parseThroughput(
        "{\"schema\": \"ssmt-throughput-v1\"}", out, &err));
    EXPECT_NE(err.find("cells"), std::string::npos);
    // A cell without a workload name is an error, not a silent skip.
    EXPECT_FALSE(sim::parseThroughput(
        "{\"schema\": \"ssmt-throughput-v1\", \"cells\": [{}]}", out,
        &err));
}

TEST(ThroughputReport, JobsInvarianceOfSimulatedCounts)
{
    // The quantity a committed report tracks is the *simulated* work
    // per cell; only wall-clock may vary with the worker count. Same
    // matrix, 1 worker vs 4.
    const std::vector<std::string> names = {"comp", "mcf_2k", "go"};
    const std::vector<sim::Mode> modes = {sim::Mode::Baseline,
                                          sim::Mode::Microthread};
    std::vector<sim::BatchJob> batch;
    for (const std::string &name : names) {
        isa::Program prog = workloads::makeWorkload(name);
        for (sim::Mode mode : modes) {
            sim::MachineConfig cfg = sim::goldenMachineConfig();
            cfg.mode = mode;
            batch.push_back(
                {name + "/" + sim::modeName(mode), prog, cfg});
        }
    }
    sim::ThroughputReport serial, parallel;
    std::string err;
    ASSERT_TRUE(
        sim::measureThroughput(batch, 1, 1, serial, &err)) << err;
    ASSERT_TRUE(
        sim::measureThroughput(batch, 4, 1, parallel, &err)) << err;
    EXPECT_EQ(serial.jobs, 1u);
    EXPECT_EQ(parallel.jobs, 4u);
    ASSERT_EQ(serial.cells.size(), batch.size());
    ASSERT_EQ(parallel.cells.size(), batch.size());
    for (size_t i = 0; i < serial.cells.size(); i++) {
        SCOPED_TRACE(batch[i].name);
        EXPECT_EQ(serial.cells[i].workload,
                  parallel.cells[i].workload);
        EXPECT_EQ(serial.cells[i].mode, parallel.cells[i].mode);
        // Simulated counters: exact. Wall-clock fields
        // (bestSeconds, mips, cyclesPerSec): excluded by design.
        EXPECT_EQ(serial.cells[i].retiredInsts,
                  parallel.cells[i].retiredInsts);
        EXPECT_EQ(serial.cells[i].cycles, parallel.cells[i].cycles);
    }
}

TEST(ThroughputReport, RepeatCrossChecksDeterminism)
{
    // repeat > 1 re-runs the suite and requires identical simulated
    // counters; a clean simulator passes and keeps minimum times.
    std::vector<sim::BatchJob> batch;
    batch.push_back({"comp/baseline", workloads::makeWorkload("comp"),
                     sim::goldenMachineConfig()});
    sim::ThroughputReport report;
    std::string err;
    ASSERT_TRUE(sim::measureThroughput(batch, 1, 2, report, &err))
        << err;
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_GT(report.cells[0].retiredInsts, 0u);
    EXPECT_GT(report.cells[0].mips, 0.0);
    EXPECT_EQ(report.repeat, 2u);
}

TEST(ThroughputReport, RegressionCompareFlagsOnlyBeyondTolerance)
{
    sim::ThroughputReport baseline = fabricatedReport();
    sim::ThroughputReport current = baseline;

    // Identical: nothing flagged at any tolerance.
    EXPECT_TRUE(
        sim::throughputRegressions(current, baseline, 0.0).empty());

    // 20% slowdown on one cell: flagged at 10%, not at 30%.
    current.cells[0].mips = baseline.cells[0].mips * 0.8;
    auto strict =
        sim::throughputRegressions(current, baseline, 0.1);
    ASSERT_EQ(strict.size(), 1u);
    EXPECT_EQ(strict[0].workload, "go");
    EXPECT_EQ(strict[0].mode, "baseline");
    EXPECT_NEAR(strict[0].ratio(), 0.8, 1e-9);
    EXPECT_TRUE(
        sim::throughputRegressions(current, baseline, 0.3).empty());

    // Cells missing from the current report are skipped, not
    // treated as regressions (the smoke run measures a subset).
    current.cells.erase(current.cells.begin());
    EXPECT_TRUE(
        sim::throughputRegressions(current, baseline, 0.1).empty());
}

TEST(ThroughputReport, CommittedBaselineCarriesBothMeasurements)
{
    // The acceptance contract on results/BENCH_throughput.json: a
    // parseable single-threaded full-matrix report whose "baseline"
    // object records the pre-change reference it is compared to.
    std::ifstream file(std::string(SSMT_RESULTS_DIR) +
                       "/BENCH_throughput.json");
    ASSERT_TRUE(file.good())
        << "results/BENCH_throughput.json missing";
    std::stringstream buffer;
    buffer << file.rdbuf();

    sim::ThroughputReport report;
    std::string err;
    ASSERT_TRUE(sim::parseThroughput(buffer.str(), report, &err))
        << err;
    EXPECT_EQ(report.jobs, 1u) << "committed numbers must be "
                                  "single-threaded";
    EXPECT_GT(report.geomeanMips, 0.0);
    // Full matrix: every workload under the four tracked modes.
    EXPECT_EQ(report.cells.size(),
              workloads::workloadNames().size() * 4);
    ASSERT_TRUE(report.baseline.present)
        << "report must record the pre-change reference";
    EXPECT_GT(report.baseline.geomeanMips, 0.0);
    EXPECT_FALSE(report.baseline.note.empty());
}

} // namespace
