/**
 * @file
 * Tests for the Path Cache: difficulty training intervals,
 * promotion/demotion events, mispredict-only allocation, and the
 * difficulty-biased replacement policy (paper Section 4.1).
 */

#include <gtest/gtest.h>

#include "core/path_cache.hh"

namespace
{

using namespace ssmt::core;

PathEvent
updateN(PathCache &pc, PathId id, int n, bool miss)
{
    PathEvent last = PathEvent::None;
    for (int i = 0; i < n; i++)
        last = pc.update(id, miss);
    return last;
}

TEST(PathCacheTest, AllocatesOnlyOnMispredict)
{
    PathCache pc(64, 4, 32, 0.10);
    pc.update(111, false);
    EXPECT_EQ(pc.allocations(), 0u);
    EXPECT_EQ(pc.allocationsSkipped(), 1u);
    pc.update(111, true);
    EXPECT_EQ(pc.allocations(), 1u);
    // Once allocated, correct outcomes update the entry normally.
    pc.update(111, false);
    EXPECT_EQ(pc.allocationsSkipped(), 1u);
}

TEST(PathCacheTest, DifficultAfterBadTrainingInterval)
{
    PathCache pc(64, 4, 8, 0.10);
    // 8 occurrences, 2 misses: rate 0.25 > 0.10 -> difficult, and a
    // promotion request fires at the interval boundary.
    pc.update(5, true);
    pc.update(5, true);
    PathEvent ev = updateN(pc, 5, 6, false);
    EXPECT_EQ(ev, PathEvent::RequestPromote);
    EXPECT_TRUE(pc.isDifficult(5));
}

TEST(PathCacheTest, EasyIntervalDoesNotPromote)
{
    PathCache pc(64, 4, 8, 0.30);
    pc.update(5, true);     // allocates (counts as 1 miss)
    PathEvent ev = updateN(pc, 5, 7, false);
    // 1/8 = 0.125 < 0.30.
    EXPECT_EQ(ev, PathEvent::None);
    EXPECT_FALSE(pc.isDifficult(5));
}

TEST(PathCacheTest, CountersResetEachInterval)
{
    PathCache pc(64, 4, 4, 0.10);
    updateN(pc, 5, 4, true);            // very difficult interval
    EXPECT_TRUE(pc.isDifficult(5));
    pc.setPromoted(5, true);
    // A clean interval demotes.
    PathEvent ev = updateN(pc, 5, 4, false);
    EXPECT_EQ(ev, PathEvent::Demote);
    EXPECT_FALSE(pc.isDifficult(5));
}

TEST(PathCacheTest, ReRequestsUntilPromoted)
{
    PathCache pc(64, 4, 4, 0.10);
    updateN(pc, 5, 4, true);
    // Builder busy: Promoted not set; every subsequent update on the
    // difficult entry re-requests.
    EXPECT_EQ(pc.update(5, false), PathEvent::RequestPromote);
    EXPECT_EQ(pc.update(5, true), PathEvent::RequestPromote);
    pc.setPromoted(5, true);
    EXPECT_EQ(pc.update(5, false), PathEvent::None);
}

TEST(PathCacheTest, PromotedBitTracked)
{
    PathCache pc(64, 4, 4, 0.10);
    updateN(pc, 5, 4, true);
    EXPECT_FALSE(pc.isPromoted(5));
    pc.setPromoted(5, true);
    EXPECT_TRUE(pc.isPromoted(5));
    pc.setPromoted(5, false);
    EXPECT_FALSE(pc.isPromoted(5));
}

TEST(PathCacheTest, ReplacementFavorsKeepingDifficult)
{
    // 1 set x 2 ways.
    PathCache pc(2, 2, 4, 0.10);
    // Path A becomes difficult.
    updateN(pc, 0x10, 4, true);
    ASSERT_TRUE(pc.isDifficult(0x10));
    // Path B occupies the other way, stays easy but is more recent.
    pc.update(0x20, true);
    pc.update(0x20, false);
    // Path C allocates: must evict the easy B despite A being LRU.
    pc.update(0x30, true);
    EXPECT_TRUE(pc.isDifficult(0x10));
    EXPECT_EQ(pc.evictions(), 1u);
    EXPECT_EQ(pc.difficultEvictions(), 0u);
}

TEST(PathCacheTest, AllDifficultSetFallsBackToLru)
{
    PathCache pc(2, 2, 4, 0.10);
    updateN(pc, 0x10, 4, true);
    updateN(pc, 0x20, 4, true);
    ASSERT_TRUE(pc.isDifficult(0x10));
    ASSERT_TRUE(pc.isDifficult(0x20));
    pc.update(0x30, true);      // must evict LRU difficult (0x10)
    EXPECT_EQ(pc.difficultEvictions(), 1u);
    EXPECT_FALSE(pc.isDifficult(0x10));
    EXPECT_TRUE(pc.isDifficult(0x20));
}

TEST(PathCacheTest, EvictedPromotionsSurfaced)
{
    PathCache pc(2, 2, 4, 0.10);
    updateN(pc, 0x10, 4, true);
    updateN(pc, 0x20, 4, true);
    pc.setPromoted(0x10, true);
    pc.setPromoted(0x20, true);
    pc.update(0x30, true);      // evicts promoted 0x10
    auto evicted = pc.takeEvictedPromotions();
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0x10u);
    // The list drains.
    EXPECT_TRUE(pc.takeEvictedPromotions().empty());
}

TEST(PathCacheTest, DifficultCountReflectsState)
{
    PathCache pc(64, 4, 4, 0.10);
    EXPECT_EQ(pc.difficultCount(), 0u);
    updateN(pc, 1, 4, true);
    updateN(pc, 2, 4, true);
    EXPECT_EQ(pc.difficultCount(), 2u);
}

TEST(PathCacheTest, ThresholdBoundaryIsStrict)
{
    // Difficulty requires rate strictly greater than T.
    PathCache pc(64, 4, 10, 0.10);
    pc.update(5, true);                 // 1 miss
    updateN(pc, 5, 9, false);           // 1/10 == T exactly
    EXPECT_FALSE(pc.isDifficult(5));
}

TEST(PathCacheTest, ResetClearsEverything)
{
    PathCache pc(64, 4, 4, 0.10);
    updateN(pc, 5, 4, true);
    pc.reset();
    EXPECT_FALSE(pc.isDifficult(5));
    EXPECT_EQ(pc.updates(), 0u);
    EXPECT_EQ(pc.difficultCount(), 0u);
}

} // namespace
