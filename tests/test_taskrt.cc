/**
 * @file
 * Tests for the work-stealing task runtime: TaskGraph dependency
 * bookkeeping (readiness gating, release order, generation-guarded
 * slot recycling) and TaskRuntime scheduling (every index exactly
 * once at any worker count, dependency ordering, the forEach
 * exception contract, and the nested-forEach serial fallback that
 * keeps a worker from deadlocking on its own pool).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/taskrt.hh"

namespace
{

using namespace ssmt;

// ---- TaskGraph: pure bookkeeping, no threads ----

TEST(TaskGraphTest, NodeWithoutDepsIsImmediatelyReady)
{
    sim::TaskGraph graph;
    sim::TaskId a = graph.add();
    EXPECT_NE(a, 0u);
    EXPECT_TRUE(graph.ready(a));
    EXPECT_FALSE(graph.done(a));
    EXPECT_EQ(graph.pending(), 1u);

    EXPECT_TRUE(graph.complete(a).empty());
    EXPECT_TRUE(graph.done(a));
    EXPECT_EQ(graph.pending(), 0u);
}

TEST(TaskGraphTest, DependenciesGateReadiness)
{
    sim::TaskGraph graph;
    sim::TaskId a = graph.add();
    sim::TaskId b = graph.add();
    sim::TaskId c = graph.add({a, b});

    EXPECT_FALSE(graph.ready(c));
    EXPECT_TRUE(graph.complete(a).empty());   // b still gates c
    EXPECT_FALSE(graph.ready(c));

    std::vector<sim::TaskId> released = graph.complete(b);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0], c);
    EXPECT_TRUE(graph.ready(c));
}

TEST(TaskGraphTest, CompleteReleasesDependentsInAscendingOrder)
{
    sim::TaskGraph graph;
    sim::TaskId root = graph.add();
    std::vector<sim::TaskId> leaves;
    for (int i = 0; i < 8; i++)
        leaves.push_back(graph.add({root}));

    std::vector<sim::TaskId> released = graph.complete(root);
    ASSERT_EQ(released.size(), leaves.size());
    for (size_t i = 1; i < released.size(); i++)
        EXPECT_LT(released[i - 1], released[i]);
}

TEST(TaskGraphTest, DoneAndStaleDepsAreAlreadySatisfied)
{
    sim::TaskGraph graph;
    sim::TaskId a = graph.add();
    graph.complete(a);

    // Depending on a completed (or never-issued) id must not block.
    sim::TaskId b = graph.add({a, 0});
    EXPECT_TRUE(graph.ready(b));
}

TEST(TaskGraphTest, RecycledSlotsGetFreshGenerations)
{
    sim::TaskGraph graph;
    sim::TaskId a = graph.add();
    graph.complete(a);

    // The slot comes back with a bumped generation: the new id is
    // distinct, and the stale id still reports done.
    sim::TaskId b = graph.add();
    EXPECT_NE(a, b);
    EXPECT_EQ(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
    EXPECT_TRUE(graph.done(a));
    EXPECT_FALSE(graph.done(b));
    graph.complete(b);
    EXPECT_TRUE(graph.done(b));
}

TEST(TaskGraphTest, RetryChainMirrorsProcRunnerUsage)
{
    // The proc_runner pattern: each retry is a fresh node gated on
    // its predecessor, completed as the old attempt is abandoned.
    sim::TaskGraph graph;
    sim::TaskId attempt = graph.add();
    for (int retry = 0; retry < 3; retry++) {
        sim::TaskId next = graph.add({attempt});
        EXPECT_FALSE(graph.ready(next));
        graph.complete(attempt);
        EXPECT_TRUE(graph.ready(next));
        attempt = next;
    }
    EXPECT_EQ(graph.pending(), 1u);
    graph.complete(attempt);
    EXPECT_EQ(graph.pending(), 0u);
}

// ---- TaskRuntime: scheduling ----

TEST(TaskRuntimeTest, ForEachRunsEveryIndexOnceAtAnyWorkerCount)
{
    for (unsigned workers : {1u, 2u, 5u}) {
        sim::TaskRuntime rt(workers);
        EXPECT_EQ(rt.workers(), workers);
        std::vector<std::atomic<int>> hits(97);
        rt.forEach(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); i++)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i
                                         << " workers " << workers;
    }
}

TEST(TaskRuntimeTest, SubmitHonorsDependencyOrder)
{
    sim::TaskRuntime rt(4);
    std::mutex m;
    std::vector<int> order;
    auto record = [&](int v) {
        std::lock_guard<std::mutex> lock(m);
        order.push_back(v);
    };

    // A diamond: 0 before {1, 2}, both before 3.
    sim::TaskId a = rt.submit([&] { record(0); });
    sim::TaskId b = rt.submit([&] { record(1); }, {a});
    sim::TaskId c = rt.submit([&] { record(2); }, {a});
    sim::TaskId d = rt.submit([&] { record(3); }, {b, c});
    rt.wait(d);

    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 3);
}

TEST(TaskRuntimeTest, WaitOnCompletedTaskReturnsImmediately)
{
    sim::TaskRuntime rt(2);
    sim::TaskId a = rt.submit([] {});
    rt.wait(a);
    rt.wait(a);     // stale id: already done, must not block
    rt.wait(0);     // never-issued id: same
}

TEST(TaskRuntimeTest, ForEachRethrowsLowestIndexedException)
{
    sim::TaskRuntime rt(4);
    std::atomic<int> completed{0};
    try {
        rt.forEach(32, [&](size_t i) {
            if (i == 5)
                throw std::runtime_error("low failure");
            if (i == 23)
                throw std::runtime_error("high failure");
            completed.fetch_add(1);
        });
        FAIL() << "expected the exception to propagate";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "low failure");
    }
    // The batch drained before rethrow: every healthy index ran.
    EXPECT_EQ(completed.load(), 30);
}

TEST(TaskRuntimeTest, NestedForEachFallsBackToSerial)
{
    // A task body calling forEach on its own pool must not deadlock:
    // the inner call detects the worker context and runs serially.
    sim::TaskRuntime rt(2);
    std::atomic<int> inner_hits{0};
    rt.forEach(4, [&](size_t) {
        rt.forEach(8, [&](size_t) { inner_hits.fetch_add(1); });
    });
    EXPECT_EQ(inner_hits.load(), 32);
}

TEST(TaskRuntimeTest, EnsureWorkersGrowsButNeverShrinks)
{
    sim::TaskRuntime rt(2);
    rt.ensureWorkers(5);
    EXPECT_EQ(rt.workers(), 5u);
    rt.ensureWorkers(3);
    EXPECT_EQ(rt.workers(), 5u);

    // The grown pool still schedules correctly.
    std::atomic<int> hits{0};
    rt.forEach(64, [&](size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 64);
}

TEST(TaskRuntimeTest, ManySmallTasksDrainThroughStealing)
{
    // Submit far more tasks than the deque capacity from an external
    // thread: overflow routes through the inboxes, thieves balance
    // the rest, and every task runs exactly once.
    sim::TaskRuntime rt(4);
    constexpr int kTasks = 5000;
    std::vector<std::atomic<int>> hits(kTasks);
    std::vector<sim::TaskId> ids;
    ids.reserve(kTasks);
    for (int i = 0; i < kTasks; i++)
        ids.push_back(rt.submit([&hits, i] { hits[i].fetch_add(1); }));
    for (sim::TaskId id : ids)
        rt.wait(id);
    for (int i = 0; i < kTasks; i++)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(TaskRuntimeTest, ForkGuardQuiescesInFlightTasks)
{
    // Start the shared pool, then take a ForkGuard while tasks are
    // in flight: the guard must block until they finish, and tasks
    // submitted after it must still run once it releases.
    sim::TaskRuntime &rt = sim::TaskRuntime::shared();
    std::atomic<int> done{0};
    std::vector<sim::TaskId> ids;
    for (int i = 0; i < 16; i++)
        ids.push_back(rt.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            done.fetch_add(1);
        }));
    {
        sim::TaskRuntime::ForkGuard guard;
        // Under the guard no worker is mid-task; anything observable
        // as started has fully finished its body.
    }
    for (sim::TaskId id : ids)
        rt.wait(id);
    EXPECT_EQ(done.load(), 16);
}

} // namespace
