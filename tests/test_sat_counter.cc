/**
 * @file
 * Tests for the saturating counters underlying every predictor.
 */

#include <gtest/gtest.h>

#include "bpred/sat_counter.hh"

namespace
{

using ssmt::bpred::SatCounter;

TEST(SatCounterTest, InitializesWeaklyTaken)
{
    SatCounter<2> c;
    EXPECT_TRUE(c.predictTaken());
    EXPECT_EQ(c.value(), 2);
}

TEST(SatCounterTest, SaturatesHigh)
{
    SatCounter<2> c;
    for (int i = 0; i < 10; i++)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounterTest, SaturatesLow)
{
    SatCounter<2> c;
    for (int i = 0; i < 10; i++)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
    EXPECT_TRUE(c.saturated());
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounterTest, HysteresisNeedsTwoFlips)
{
    SatCounter<2> c;           // starts at 2 (weakly taken)
    c.update(true);             // 3
    c.update(false);            // 2: still predicts taken
    EXPECT_TRUE(c.predictTaken());
    c.update(false);            // 1: now predicts not taken
    EXPECT_FALSE(c.predictTaken());
}

template <int Bits>
void
sweepWidth()
{
    SatCounter<Bits> c;
    for (int i = 0; i < (1 << Bits) + 4; i++)
        c.increment();
    EXPECT_EQ(c.value(), (1 << Bits) - 1);
    for (int i = 0; i < (1 << Bits) + 4; i++)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
}

TEST(SatCounterTest, WidthSweep)
{
    sweepWidth<1>();
    sweepWidth<2>();
    sweepWidth<3>();
    sweepWidth<4>();
}

TEST(SatCounterTest, ExplicitInitialValue)
{
    SatCounter<3> c(0);
    EXPECT_FALSE(c.predictTaken());
    SatCounter<3> d(7);
    EXPECT_TRUE(d.predictTaken());
    EXPECT_TRUE(d.saturated());
}

} // namespace
