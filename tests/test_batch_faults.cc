/**
 * @file
 * Tests for fault-tolerant batch execution: per-job error capture,
 * the cycle-budget watchdog, deterministic retry seeding, and the
 * library-safe fatal / rate-limited warn logging paths.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "isa/builder.hh"
#include "sim/batch_runner.hh"
#include "sim/logging.hh"
#include "sim/machine_config.hh"
#include "sim/sim_error.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using namespace ssmt::sim;

// Small, quickly-terminating kernel for sibling jobs.
isa::Program
tinyProgram()
{
    workloads::SyntheticSpec spec;
    spec.numSites = 2;
    spec.elemsPerSite = 16;
    spec.takenPercent = {50, 50};
    spec.iters = 8;
    return workloads::makeSynthetic(spec);
}

// An infinite loop: beq on equal registers is always taken, so the
// program never reaches halt. Only a watchdog can end this job.
isa::Program
spinProgram()
{
    isa::ProgramBuilder b;
    b.label("spin");
    b.addi(isa::R(1), isa::R(1), 1);
    b.beq(isa::R(0), isa::R(0), "spin");
    b.halt();
    return b.build("spin");
}

MachineConfig
mtConfig()
{
    MachineConfig cfg;
    cfg.mode = Mode::Microthread;
    return cfg;
}

// Scoped opt-in to throwing SSMT_FATAL; restores the previous mode
// so the EXPECT_EXIT tests elsewhere in this binary keep seeing the
// default exit(1) behavior.
struct FatalThrowsGuard
{
    bool prev;
    FatalThrowsGuard() : prev(ssmt::detail::fatalThrows())
    {
        ssmt::detail::setFatalThrows(true);
    }
    ~FatalThrowsGuard() { ssmt::detail::setFatalThrows(prev); }
};

TEST(BatchFaultsTest, ThrowingJobBecomesErrorSlot)
{
    std::vector<BatchJob> batch(3);
    batch[0] = {"good0", tinyProgram(), mtConfig()};
    batch[1] = {"bad", tinyProgram(), mtConfig()};
    batch[1].config.windowSize = 0;    // rejected by validate()
    batch[2] = {"good1", tinyProgram(), mtConfig()};

    BatchPolicy policy;
    policy.maxRetries = 3;    // must NOT retry a non-recoverable job
    std::vector<BatchResult> results =
        BatchRunner(2).run(batch, policy);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_TRUE(results[2].ok()) << results[2].error;
    EXPECT_GT(results[0].stats.retiredInsts, 0u);
    EXPECT_GT(results[2].stats.retiredInsts, 0u);

    EXPECT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].errorCode, ErrorCode::ConfigInvalid);
    EXPECT_EQ(results[1].attempts, 1u);
    EXPECT_NE(results[1].error.find("windowSize"), std::string::npos)
        << results[1].error;
}

TEST(BatchFaultsTest, WatchdogTripsOnHungJobAndRetries)
{
    std::vector<BatchJob> batch(2);
    batch[0] = {"spin", spinProgram(), mtConfig()};
    batch[1] = {"good", tinyProgram(), mtConfig()};

    BatchPolicy policy;
    policy.cycleBudget = 60000;
    policy.maxRetries = 1;
    std::vector<BatchResult> results =
        BatchRunner(2).run(batch, policy);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].errorCode, ErrorCode::WatchdogExpired);
    // Watchdog failures are recoverable, so the retry was consumed.
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_NE(results[0].error.find("spin"), std::string::npos);

    EXPECT_TRUE(results[1].ok()) << results[1].error;
    EXPECT_GT(results[1].stats.retiredInsts, 0u);
}

TEST(BatchFaultsTest, RetrySeedIsDeterministicAndDistinct)
{
    const uint64_t seed = 0xabcdef12345ULL;
    EXPECT_EQ(BatchRunner::retrySeed(seed, 0), seed);
    EXPECT_EQ(BatchRunner::retrySeed(seed, 1),
              BatchRunner::retrySeed(seed, 1));
    EXPECT_NE(BatchRunner::retrySeed(seed, 1), seed);
    EXPECT_NE(BatchRunner::retrySeed(seed, 1),
              BatchRunner::retrySeed(seed, 2));
    EXPECT_NE(BatchRunner::retrySeed(seed, 1), 0u);
    EXPECT_NE(BatchRunner::retrySeed(0, 1), 0u);
}

// A batch mixing clean jobs, a fault-injected job, and a failing job
// must produce bit-identical results regardless of worker count —
// including the error fields.
TEST(BatchFaultsTest, MixedBatchIsDeterministicAcrossWorkerCounts)
{
    std::vector<BatchJob> batch(4);
    batch[0] = {"clean", tinyProgram(), mtConfig()};
    batch[1] = {"faulted", tinyProgram(), mtConfig()};
    batch[1].config.faults.site = FaultSite::PathCacheEvict;
    batch[1].config.faults.count = 4;
    batch[1].config.faults.seed = 77;
    batch[1].config.faults.period = 40;
    batch[2] = {"bad", tinyProgram(), mtConfig()};
    batch[2].config.prbEntries = 0;
    batch[3] = {"spin", spinProgram(), mtConfig()};

    BatchPolicy policy;
    policy.cycleBudget = 60000;
    policy.maxRetries = 2;

    std::vector<BatchResult> serial =
        BatchRunner(1).run(batch, policy);
    std::vector<BatchResult> parallel =
        BatchRunner(4).run(batch, policy);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(std::memcmp(&serial[i].stats, &parallel[i].stats,
                              sizeof(Stats)),
                  0)
            << batch[i].name;
        EXPECT_EQ(serial[i].error, parallel[i].error)
            << batch[i].name;
        EXPECT_EQ(serial[i].errorCode, parallel[i].errorCode)
            << batch[i].name;
        EXPECT_EQ(serial[i].attempts, parallel[i].attempts)
            << batch[i].name;
        EXPECT_EQ(serial[i].faults.injected,
                  parallel[i].faults.injected)
            << batch[i].name;
    }
}

TEST(BatchFaultsTest, FailureSummaryDigestsFailedJobs)
{
    std::vector<BatchJob> batch(2);
    batch[0] = {"fine", tinyProgram(), mtConfig()};
    batch[1] = {"broken", tinyProgram(), mtConfig()};
    batch[1].config.fetchWidth = 0;

    std::vector<BatchResult> results = BatchRunner(1).run(batch);
    std::string summary =
        BatchRunner::failureSummary(batch, results);
    EXPECT_NE(summary.find("broken"), std::string::npos);
    EXPECT_NE(summary.find("config-invalid"), std::string::npos);
    EXPECT_EQ(summary.find("fine"), std::string::npos);

    std::vector<BatchJob> all_good(1);
    all_good[0] = {"ok", tinyProgram(), mtConfig()};
    std::vector<BatchResult> good_results =
        BatchRunner(1).run(all_good);
    EXPECT_TRUE(
        BatchRunner::failureSummary(all_good, good_results).empty());
}

TEST(LoggingTest, FatalThrowsModeRaisesFatalError)
{
    FatalThrowsGuard guard;
    EXPECT_THROW(workloads::makeWorkload("no-such-workload"),
                 FatalError);
    try {
        workloads::makeWorkload("no-such-workload");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Fatal);
        EXPECT_FALSE(e.recoverable());
        EXPECT_NE(std::string(e.what()).find("unknown workload"),
                  std::string::npos);
    }
}

TEST(LoggingTest, WarnIsRateLimitedPerSiteAcrossThreads)
{
    const uint64_t emitted_before = ssmt::detail::warnEmittedTotal();
    const uint64_t suppressed_before =
        ssmt::detail::warnSuppressedTotal();

    const int kThreads = 4;
    const int kWarnsPerThread = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([] {
            for (int i = 0; i < kWarnsPerThread; i++) {
                SSMT_WARN("rate-limit test warning");  // one site
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }

    const uint64_t total =
        static_cast<uint64_t>(kThreads) * kWarnsPerThread;
    const uint64_t emitted =
        ssmt::detail::warnEmittedTotal() - emitted_before;
    const uint64_t suppressed =
        ssmt::detail::warnSuppressedTotal() - suppressed_before;

    // First 5 verbatim plus one suppression notice; the rest are
    // counted but never printed.
    EXPECT_EQ(emitted, ssmt::detail::kWarnVerbatimPerSite + 1);
    EXPECT_EQ(suppressed,
              total - ssmt::detail::kWarnVerbatimPerSite);
    EXPECT_EQ(emitted + suppressed, total + 1);
}

} // namespace
