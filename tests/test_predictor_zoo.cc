/**
 * @file
 * Machine-level tests for the pluggable direction-predictor backends:
 * the `predictor` knob must reach the front end, every backend must
 * keep the simulator deterministic (golden byte-identity across runs
 * and --jobs counts) and snapshot-exact, and the configFingerprint
 * must fence snapshots off from cross-backend restores.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bpred/direction_predictor.hh"
#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/machine_config.hh"
#include "sim/sim_error.hh"
#include "sim/sim_runner.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using bpred::PredictorKind;

workloads::WorkloadInfo
findWorkload(const std::string &name)
{
    for (const auto &info : workloads::allWorkloads())
        if (info.name == name)
            return info;
    ADD_FAILURE() << "workload " << name << " not registered";
    return workloads::allWorkloads().front();
}

sim::MachineConfig
zooConfig(PredictorKind kind, sim::Mode mode = sim::Mode::Microthread)
{
    sim::MachineConfig cfg = sim::goldenMachineConfig();
    cfg.mode = mode;
    cfg.predictor = kind;
    return cfg;
}

std::string
goldenText(const std::string &name, const sim::Stats &stats)
{
    return sim::goldenJson({name, sim::kGoldenConfigName, stats});
}

TEST(PredictorZoo, FingerprintNamesTheBackend)
{
    for (PredictorKind kind : bpred::allPredictorKinds()) {
        std::string fp = sim::configFingerprint(zooConfig(kind));
        std::string want =
            std::string("predictor=") + bpred::predictorKindName(kind) +
            ";";
        EXPECT_NE(fp.find(want), std::string::npos)
            << fp << " lacks " << want;
    }
    // The knob must actually separate fingerprints.
    EXPECT_NE(sim::configFingerprint(zooConfig(PredictorKind::Tage)),
              sim::configFingerprint(zooConfig(PredictorKind::Hybrid)));
    sim::MachineConfig wide = zooConfig(PredictorKind::Hybrid);
    wide.bpredHistoryBits = 24;
    EXPECT_NE(sim::configFingerprint(wide),
              sim::configFingerprint(zooConfig(PredictorKind::Hybrid)));
}

TEST(PredictorZoo, ValidateRejectsBadBpredGeometry)
{
    sim::MachineConfig cfg = zooConfig(PredictorKind::Hybrid);
    EXPECT_TRUE(cfg.validate().empty());

    sim::MachineConfig bad = cfg;
    bad.bpredHistoryBits = 65;
    EXPECT_FALSE(bad.validate().empty());

    bad = cfg;
    bad.bpredComponentEntries = 1000;   // not a power of two
    EXPECT_FALSE(bad.validate().empty());

    bad = cfg;
    bad.rasDepth = 0;
    EXPECT_FALSE(bad.validate().empty());
    try {
        bad.validateOrThrow();
        FAIL() << "expected SimError(ConfigInvalid)";
    } catch (const sim::SimError &err) {
        EXPECT_EQ(err.code(), sim::ErrorCode::ConfigInvalid);
    }
}

TEST(PredictorZoo, EveryBackendRunsDeterministically)
{
    isa::Program prog = findWorkload("comp").make({});
    for (PredictorKind kind : bpred::allPredictorKinds()) {
        sim::MachineConfig cfg = zooConfig(kind);
        sim::Stats a = sim::runProgramChecked(prog, cfg, "comp");
        sim::Stats b = sim::runProgramChecked(prog, cfg, "comp");
        EXPECT_EQ(goldenText("comp", a), goldenText("comp", b))
            << bpred::predictorKindName(kind);
        // The backend is live: the machine saw branches and the
        // committed instruction stream is backend-invariant.
        EXPECT_GT(a.condBranches, 0u);
    }
}

TEST(PredictorZoo, CommittedStreamIsBackendInvariant)
{
    // Direction prediction only steers speculation; every backend
    // must retire the same architectural work.
    isa::Program prog = findWorkload("go").make({});
    sim::Stats base =
        sim::runProgramChecked(prog, zooConfig(PredictorKind::Hybrid),
                               "go");
    for (PredictorKind kind :
         {PredictorKind::Tage, PredictorKind::Perceptron}) {
        sim::Stats s =
            sim::runProgramChecked(prog, zooConfig(kind), "go");
        EXPECT_EQ(s.retiredInsts, base.retiredInsts)
            << bpred::predictorKindName(kind);
        EXPECT_EQ(s.condBranches, base.condBranches)
            << bpred::predictorKindName(kind);
    }
}

TEST(PredictorZoo, SnapshotResumeIsByteIdenticalPerBackend)
{
    isa::Program prog = findWorkload("comp").make({});
    for (PredictorKind kind :
         {PredictorKind::Tage, PredictorKind::Perceptron}) {
        sim::MachineConfig cfg = zooConfig(kind);

        sim::RunArtifacts straightArt;
        sim::Stats straight = sim::runProgramChecked(
            prog, cfg, "comp", 0, nullptr, &straightArt,
            /*snapshot_at_cycle=*/5000);
        ASSERT_FALSE(straightArt.snapshot.empty())
            << bpred::predictorKindName(kind);

        sim::Stats resumed = sim::runProgramChecked(
            prog, cfg, "comp", 0, nullptr, nullptr, 0,
            &straightArt.snapshot);
        EXPECT_EQ(goldenText("comp", resumed),
                  goldenText("comp", straight))
            << bpred::predictorKindName(kind);

        // Restore-then-recheckpoint matches the straight checkpoint:
        // the backend's save() loses nothing.
        sim::RunArtifacts straightLater, resumedLater;
        sim::runProgramChecked(prog, cfg, "comp", 0, nullptr,
                               &straightLater, 7000);
        sim::runProgramChecked(prog, cfg, "comp", 0, nullptr,
                               &resumedLater, 7000,
                               &straightArt.snapshot);
        EXPECT_EQ(resumedLater.snapshot, straightLater.snapshot)
            << bpred::predictorKindName(kind);
    }
}

TEST(PredictorZoo, CrossBackendRestoreIsRejected)
{
    isa::Program prog = findWorkload("comp").make({});
    sim::MachineConfig tage = zooConfig(PredictorKind::Tage);

    sim::RunArtifacts art;
    sim::runProgramChecked(prog, tage, "comp", 0, nullptr, &art, 5000);
    ASSERT_FALSE(art.snapshot.empty());

    for (PredictorKind other :
         {PredictorKind::Hybrid, PredictorKind::Perceptron}) {
        sim::MachineConfig cfg = zooConfig(other);
        try {
            sim::runProgramChecked(prog, cfg, "comp", 0, nullptr,
                                   nullptr, 0, &art.snapshot);
            FAIL() << "tage snapshot restored under "
                   << bpred::predictorKindName(other);
        } catch (const sim::SimError &err) {
            EXPECT_EQ(err.code(), sim::ErrorCode::ConfigInvalid);
        }
    }
}

TEST(PredictorZoo, BatchesAgreeAcrossJobCountsPerBackend)
{
    const char *names[] = {"comp", "li"};
    for (PredictorKind kind :
         {PredictorKind::Tage, PredictorKind::Perceptron}) {
        sim::MachineConfig cfg = zooConfig(kind);
        std::vector<sim::BatchJob> batch;
        for (const char *name : names)
            batch.push_back({name, findWorkload(name).make({}), cfg});

        std::vector<sim::BatchResult> serial =
            sim::BatchRunner(1).run(batch, {});
        std::vector<sim::BatchResult> parallel =
            sim::BatchRunner(4).run(batch, {});
        for (size_t i = 0; i < batch.size(); i++) {
            ASSERT_TRUE(serial[i].ok()) << serial[i].error;
            ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
            EXPECT_EQ(goldenText(batch[i].name, parallel[i].stats),
                      goldenText(batch[i].name, serial[i].stats))
                << bpred::predictorKindName(kind);
        }
    }
}

} // namespace
