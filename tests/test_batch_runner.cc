/**
 * @file
 * Tests for the BatchRunner parallel simulation engine: parallel
 * batches must be bit-identical to serial execution, `--jobs 1` must
 * degenerate to a plain serial loop, and a throwing job must surface
 * its exception on the calling thread without deadlocking the pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/batch_runner.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

/** Every simulated counter must match; host timing may differ. */
void
expectStatsEqual(const sim::Stats &a, const sim::Stats &b,
                 const std::string &label)
{
    SCOPED_TRACE(label);
#define SSMT_EQ_FIELD(f) EXPECT_EQ(a.f, b.f) << #f
    SSMT_EQ_FIELD(cycles);
    SSMT_EQ_FIELD(retiredInsts);
    SSMT_EQ_FIELD(fetchBubbleCycles);
    SSMT_EQ_FIELD(condBranches);
    SSMT_EQ_FIELD(condHwMispredicts);
    SSMT_EQ_FIELD(indirectBranches);
    SSMT_EQ_FIELD(indirectHwMispredicts);
    SSMT_EQ_FIELD(usedMispredicts);
    SSMT_EQ_FIELD(promotionsRequested);
    SSMT_EQ_FIELD(promotionsCompleted);
    SSMT_EQ_FIELD(demotions);
    SSMT_EQ_FIELD(buildsFailed);
    SSMT_EQ_FIELD(rebuildRequests);
    SSMT_EQ_FIELD(oracleOverrides);
    SSMT_EQ_FIELD(throttleDemotions);
    SSMT_EQ_FIELD(hintPromotions);
    SSMT_EQ_FIELD(spawnAttempts);
    SSMT_EQ_FIELD(spawnAbortPrefix);
    SSMT_EQ_FIELD(spawnNoContext);
    SSMT_EQ_FIELD(spawns);
    SSMT_EQ_FIELD(abortsPostSpawn);
    SSMT_EQ_FIELD(microthreadsCompleted);
    SSMT_EQ_FIELD(microOpsExecuted);
    SSMT_EQ_FIELD(predEarly);
    SSMT_EQ_FIELD(predLate);
    SSMT_EQ_FIELD(predUseless);
    SSMT_EQ_FIELD(predNeverReached);
    SSMT_EQ_FIELD(microPredCorrect);
    SSMT_EQ_FIELD(microPredWrong);
    SSMT_EQ_FIELD(earlyRecoveries);
    SSMT_EQ_FIELD(bogusRecoveries);
    SSMT_EQ_FIELD(pathCacheUpdates);
    SSMT_EQ_FIELD(pathCacheAllocations);
    SSMT_EQ_FIELD(pathCacheAllocationsSkipped);
    SSMT_EQ_FIELD(pcacheWrites);
    SSMT_EQ_FIELD(pcacheLookupHits);
    SSMT_EQ_FIELD(l1dMisses);
    SSMT_EQ_FIELD(l1dAccesses);
    SSMT_EQ_FIELD(l2Misses);
    SSMT_EQ_FIELD(l2Accesses);
    SSMT_EQ_FIELD(build.requests);
    SSMT_EQ_FIELD(build.built);
    SSMT_EQ_FIELD(build.failScopeNotInPrb);
    SSMT_EQ_FIELD(build.failPathMismatch);
    SSMT_EQ_FIELD(build.stopsMemDep);
    SSMT_EQ_FIELD(build.stopsMcbFull);
    SSMT_EQ_FIELD(build.totalOps);
    SSMT_EQ_FIELD(build.totalChain);
    SSMT_EQ_FIELD(build.totalLiveIns);
    SSMT_EQ_FIELD(build.prunedRoutines);
    SSMT_EQ_FIELD(build.prunedSubtrees);
#undef SSMT_EQ_FIELD
    EXPECT_EQ(a.report(), b.report());
}

/** 12 mixed jobs: 6 workloads under baseline and microthread mode. */
std::vector<sim::BatchJob>
mixedBatch()
{
    const auto &all = workloads::allWorkloads();
    std::vector<sim::BatchJob> batch;
    sim::MachineConfig baseline;
    sim::MachineConfig micro;
    micro.mode = sim::Mode::Microthread;
    for (size_t i = 0; i < 6 && i < all.size(); i++) {
        batch.push_back(
            {all[i].name + "/base", all[i].make({}), baseline});
        batch.push_back(
            {all[i].name + "/micro", all[i].make({}), micro});
    }
    return batch;
}

TEST(BatchRunnerTest, ParallelMatchesSerialBitForBit)
{
    std::vector<sim::BatchJob> batch = mixedBatch();
    ASSERT_EQ(batch.size(), 12u);

    std::vector<sim::BatchResult> serial =
        sim::BatchRunner(1).run(batch);
    std::vector<sim::BatchResult> parallel =
        sim::BatchRunner(8).run(batch);

    ASSERT_EQ(serial.size(), batch.size());
    ASSERT_EQ(parallel.size(), batch.size());
    for (size_t i = 0; i < batch.size(); i++)
        expectStatsEqual(serial[i].stats, parallel[i].stats,
                         batch[i].name);
}

TEST(BatchRunnerTest, JobsOneRunsSeriallyOnCallingThread)
{
    sim::BatchRunner runner(1);
    EXPECT_EQ(runner.jobs(), 1u);

    // Serial degenerate case: every index runs in order, on this
    // very thread.
    const std::thread::id self = std::this_thread::get_id();
    std::vector<size_t> order;
    runner.forEach(16, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 0; i < order.size(); i++)
        EXPECT_EQ(order[i], i);
}

TEST(BatchRunnerTest, ResolveJobsPriority)
{
    // Explicit request wins over everything.
    EXPECT_EQ(sim::BatchRunner::resolveJobs(3), 3u);

    // SSMT_JOBS is the fallback for an unspecified count.
    ::setenv("SSMT_JOBS", "5", 1);
    EXPECT_EQ(sim::BatchRunner::resolveJobs(0), 5u);
    EXPECT_EQ(sim::BatchRunner::resolveJobs(2), 2u);

    // Nonsense values fall through to the host core count (>= 1).
    ::setenv("SSMT_JOBS", "bogus", 1);
    EXPECT_GE(sim::BatchRunner::resolveJobs(0), 1u);
    ::unsetenv("SSMT_JOBS");
    EXPECT_GE(sim::BatchRunner::resolveJobs(0), 1u);
}

TEST(BatchRunnerTest, ExceptionSurfacesWithoutDeadlock)
{
    sim::BatchRunner runner(4);
    std::atomic<int> completed{0};
    try {
        runner.forEach(32, [&](size_t i) {
            if (i == 7)
                throw std::runtime_error("job 7 exploded");
            completed.fetch_add(1);
        });
        FAIL() << "expected the job's exception to propagate";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "job 7 exploded");
    }
    // The pool drained: every other job still ran exactly once.
    EXPECT_EQ(completed.load(), 31);
}

TEST(BatchRunnerTest, LowestIndexedExceptionWins)
{
    // Two failing jobs: the caller must see the lowest-indexed one
    // deterministically, regardless of worker scheduling.
    sim::BatchRunner runner(4);
    try {
        runner.forEach(16, [&](size_t i) {
            if (i == 3)
                throw std::runtime_error("first failure");
            if (i == 11)
                throw std::runtime_error("second failure");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "first failure");
    }
}

TEST(BatchRunnerTest, SerialExceptionAlsoPropagates)
{
    sim::BatchRunner runner(1);
    EXPECT_THROW(runner.forEach(
                     4,
                     [](size_t i) {
                         if (i == 2)
                             throw std::logic_error("serial boom");
                     }),
                 std::logic_error);
}

TEST(BatchRunnerTest, EmptyAndTinyBatches)
{
    sim::BatchRunner runner(8);
    // n == 0: no workers, no calls.
    runner.forEach(0, [](size_t) { FAIL() << "must not be called"; });

    // Fewer jobs than workers: each index runs exactly once.
    std::vector<std::atomic<int>> hits(3);
    runner.forEach(3, [&](size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);

    EXPECT_TRUE(runner.run({}).empty());
}

} // namespace
