/**
 * @file
 * Subprocess isolation tests: clean jobs must produce byte-identical
 * results in-process and isolated (at any worker count), a crashing
 * or hanging child must become a typed error slot while every other
 * job completes, the ssmt-job-result-v1 codec must round-trip, and
 * the per-site warning registry must attribute child warnings to the
 * job that fired them.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/job_codec.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/sim_error.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

/** A fast mixed batch: synthetic kernel under three modes, series
 *  sampling on so the artifact path is exercised too. */
std::vector<sim::BatchJob>
smallBatch()
{
    isa::Program prog = workloads::makeSynthetic({});
    std::vector<sim::BatchJob> batch;
    for (sim::Mode mode :
         {sim::Mode::Baseline, sim::Mode::Microthread,
          sim::Mode::OracleDifficultPath}) {
        sim::MachineConfig cfg;
        cfg.mode = mode;
        cfg.sampleInterval = 500;
        batch.push_back(
            {std::string("synth/") + sim::modeName(mode), prog, cfg});
    }
    return batch;
}

/** Byte-level equality witness for one result: golden counters plus
 *  the canonical series serialization. */
std::string
witness(const sim::BatchResult &r, const std::string &name)
{
    return sim::goldenJson({name, "test", r.stats}) +
           sim::seriesJson(r.artifacts.series);
}

TEST(ProcIsolate, CleanJobsByteIdenticalToInProcess)
{
    std::vector<sim::BatchJob> batch = smallBatch();
    std::vector<sim::BatchResult> in_process =
        sim::BatchRunner(2).run(batch);

    for (unsigned jobs : {1u, 4u}) {
        sim::BatchPolicy policy;
        policy.isolate = true;
        std::vector<sim::BatchResult> isolated =
            sim::BatchRunner(jobs).run(batch, policy);
        ASSERT_EQ(isolated.size(), batch.size());
        for (size_t i = 0; i < batch.size(); i++) {
            SCOPED_TRACE(batch[i].name + " jobs=" +
                         std::to_string(jobs));
            EXPECT_TRUE(isolated[i].ok()) << isolated[i].error;
            EXPECT_EQ(isolated[i].attempts, 1u);
            EXPECT_EQ(witness(isolated[i], batch[i].name),
                      witness(in_process[i], batch[i].name));
        }
    }
}

TEST(ProcIsolate, CrashedChildIsContained)
{
    const struct
    {
        sim::CrashKind kind;
        sim::ErrorCode want;
    } cases[] = {
        {sim::CrashKind::Segv, sim::ErrorCode::JobCrashed},
        {sim::CrashKind::Abort, sim::ErrorCode::JobCrashed},
        {sim::CrashKind::Exit, sim::ErrorCode::JobCrashed},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(sim::crashKindName(c.kind));
        std::vector<sim::BatchJob> batch = smallBatch();
        batch[1].crash = c.kind;

        sim::BatchPolicy policy;
        policy.isolate = true;
        std::vector<sim::BatchResult> results =
            sim::BatchRunner(2).run(batch, policy);

        EXPECT_TRUE(results[0].ok()) << results[0].error;
        EXPECT_TRUE(results[2].ok()) << results[2].error;
        EXPECT_EQ(results[1].errorCode, c.want)
            << results[1].error;
        EXPECT_FALSE(results[1].error.empty());
    }
}

TEST(ProcIsolate, HungChildKilledByWallDeadline)
{
    std::vector<sim::BatchJob> batch = smallBatch();
    batch[1].crash = sim::CrashKind::Hang;

    sim::BatchPolicy policy;
    policy.isolate = true;
    policy.wallDeadlineSeconds = 1.0;
    std::vector<sim::BatchResult> results =
        sim::BatchRunner(2).run(batch, policy);

    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_TRUE(results[2].ok()) << results[2].error;
    EXPECT_EQ(results[1].errorCode, sim::ErrorCode::JobKilled)
        << results[1].error;
}

// RLIMIT_AS-based OOM containment conflicts with AddressSanitizer's
// shadow-memory reservation, so the sanitizer preset skips it.
#if !defined(__SANITIZE_ADDRESS__) && !defined(SSMT_ASAN_SKIP_OOM)
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SSMT_ASAN_SKIP_OOM 1
#endif
#endif
#endif
#ifndef SSMT_ASAN_SKIP_OOM
TEST(ProcIsolate, OomChildKilledByAddressSpaceLimit)
{
    std::vector<sim::BatchJob> batch = smallBatch();
    batch[1].crash = sim::CrashKind::Oom;

    sim::BatchPolicy policy;
    policy.isolate = true;
    policy.memLimitMb = 256;
    // Backstop: even if the allocator somehow survives the rlimit,
    // the deadline reaps the child instead of hanging the test.
    policy.wallDeadlineSeconds = 30.0;
    std::vector<sim::BatchResult> results =
        sim::BatchRunner(2).run(batch, policy);

    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_TRUE(results[2].ok()) << results[2].error;
    EXPECT_FALSE(results[1].ok());
    EXPECT_TRUE(results[1].errorCode == sim::ErrorCode::JobCrashed ||
                results[1].errorCode == sim::ErrorCode::JobKilled)
        << results[1].error;
}
#endif

TEST(ProcIsolate, InProcessRunRefusesCrashInjection)
{
    std::vector<sim::BatchJob> batch = smallBatch();
    batch[1].crash = sim::CrashKind::Segv;

    // No isolate: the deliberate crash must be refused, not taken.
    std::vector<sim::BatchResult> results =
        sim::BatchRunner(2).run(batch);
    EXPECT_TRUE(results[0].ok());
    EXPECT_TRUE(results[2].ok());
    EXPECT_EQ(results[1].errorCode, sim::ErrorCode::ConfigInvalid);
}

TEST(ProcIsolate, ChildWarningsAttributedToTheirJob)
{
    std::vector<sim::BatchJob> batch = smallBatch();
    // An unopenable trace stream fires exactly one SSMT_WARN in the
    // core constructor — inside the child for job 1 only.
    batch[1].config.tracePath =
        "/nonexistent-ssmt-dir/trace.jsonl";

    sim::BatchPolicy policy;
    policy.isolate = true;
    std::vector<sim::BatchResult> results =
        sim::BatchRunner(2).run(batch, policy);

    ASSERT_TRUE(results[1].ok()) << results[1].error;
    ASSERT_EQ(results[1].warnings.size(), 1u);
    EXPECT_EQ(results[1].warnings[0].count, 1u);
    EXPECT_EQ(results[1].warnings[0].suppressed, 0u);
    EXPECT_NE(results[1].warnings[0].site.find("ssmt_core"),
              std::string::npos);
    EXPECT_TRUE(results[0].warnings.empty());
    EXPECT_TRUE(results[2].warnings.empty());
}

TEST(WarnSites, RegistryCountsAndDelta)
{
    using ssmt::detail::warnSiteCounts;
    using ssmt::detail::warnSiteDelta;

    std::vector<WarnSiteCount> before = warnSiteCounts();
    // Fire one site kWarnVerbatimPerSite + 3 times: the tail beyond
    // the verbatim budget must show up as `suppressed`.
    const uint64_t fired = ssmt::detail::kWarnVerbatimPerSite + 3;
    for (uint64_t i = 0; i < fired; i++)
        SSMT_WARN("warn-site registry test (deliberate)");
    std::vector<WarnSiteCount> after = warnSiteCounts();

    std::vector<WarnSiteCount> delta = warnSiteDelta(before, after);
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_NE(delta[0].site.find("test_proc_isolate"),
              std::string::npos);
    EXPECT_EQ(delta[0].count, fired);
    EXPECT_EQ(delta[0].suppressed, 3u);

    // The registry view is sorted and cumulative.
    bool found = false;
    for (const WarnSiteCount &site : after) {
        if (site.site == delta[0].site) {
            found = true;
            EXPECT_GE(site.count, fired);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(warnSiteDelta(after, after).empty());
}

TEST(JobCodec, RoundTripPreservesEverything)
{
    std::vector<sim::BatchJob> batch = smallBatch();
    sim::BatchResult original;
    std::string checkpoint;
    bool final_attempt = sim::detail::runAttempt(
        batch[1], sim::BatchPolicy{}, 0, checkpoint, original);
    ASSERT_TRUE(original.ok()) << original.error;
    ASSERT_TRUE(final_attempt);

    std::string wire =
        sim::encodeJobResult(original, checkpoint, final_attempt);
    sim::BatchResult decoded;
    std::string decoded_checkpoint;
    bool decoded_final = false;
    sim::decodeJobResult(wire, batch[1].config, &decoded,
                         &decoded_checkpoint, &decoded_final);

    EXPECT_EQ(decoded_final, final_attempt);
    EXPECT_EQ(decoded_checkpoint, checkpoint);
    EXPECT_EQ(decoded.errorCode, original.errorCode);
    EXPECT_EQ(decoded.attempts, original.attempts);
    EXPECT_EQ(witness(decoded, "rt"), witness(original, "rt"));
    // Re-encoding must reproduce the wire bytes (canonical format).
    EXPECT_EQ(sim::encodeJobResult(decoded, decoded_checkpoint,
                                   decoded_final),
              wire);
    // hostSeconds never travels; the parent re-stamps it.
    EXPECT_EQ(decoded.hostSeconds, 0.0);
}

TEST(JobCodec, MalformedDocumentsThrowParseError)
{
    std::vector<sim::BatchJob> batch = smallBatch();
    sim::BatchResult result;
    std::string checkpoint;
    sim::detail::runAttempt(batch[0], sim::BatchPolicy{}, 0,
                            checkpoint, result);
    std::string wire = sim::encodeJobResult(result, checkpoint, true);

    auto expect_parse_error = [&](const std::string &text) {
        sim::BatchResult out;
        std::string cp;
        bool fin;
        try {
            sim::decodeJobResult(text, batch[0].config, &out, &cp,
                                 &fin);
            ADD_FAILURE() << "decode accepted a corrupt document";
        } catch (const sim::SimError &err) {
            EXPECT_EQ(err.code(), sim::ErrorCode::ParseError)
                << err.what();
        }
    };

    expect_parse_error("");
    expect_parse_error("not json at all");
    expect_parse_error("{\"schema\": \"wrong-schema\"}");
    // Truncations at several depths of the real document.
    for (size_t keep : {wire.size() / 10, wire.size() / 2,
                        wire.size() - 2})
        expect_parse_error(wire.substr(0, keep));
}

TEST(ProcIsolate, RetriesAndBackoffStillRetryInChildren)
{
    // A tiny cycle budget trips the watchdog; with retries the budget
    // extension lets attempt 2 finish. The isolated path must carry
    // the retry/checkpoint plumbing over the wire.
    std::vector<sim::BatchJob> batch = smallBatch();

    // The synthetic program runs ~123k cycles; a 30k budget trips the
    // watchdog on attempt 1 and the resumed attempts finish well
    // inside the retry allowance.
    sim::BatchPolicy policy;
    policy.isolate = true;
    policy.cycleBudget = 30000;
    policy.maxRetries = 8;
    policy.resumeOnWatchdog = true;
    policy.backoffMs = 1;
    std::vector<sim::BatchResult> isolated =
        sim::BatchRunner(2).run(batch, policy);

    sim::BatchPolicy in_process_policy = policy;
    in_process_policy.isolate = false;
    std::vector<sim::BatchResult> in_process =
        sim::BatchRunner(2).run(batch, in_process_policy);

    for (size_t i = 0; i < batch.size(); i++) {
        SCOPED_TRACE(batch[i].name);
        ASSERT_TRUE(isolated[i].ok()) << isolated[i].error;
        ASSERT_TRUE(in_process[i].ok()) << in_process[i].error;
        EXPECT_GT(isolated[i].attempts, 1u);
        EXPECT_EQ(isolated[i].attempts, in_process[i].attempts);
        EXPECT_EQ(witness(isolated[i], batch[i].name),
                  witness(in_process[i], batch[i].name));
    }
}

} // namespace
