/**
 * @file
 * Tests for Stats derived metrics and MachineConfig reporting.
 */

#include <gtest/gtest.h>

#include "sim/machine_config.hh"
#include "sim/sim_runner.hh"
#include "sim/stats.hh"

namespace
{

using namespace ssmt::sim;

TEST(StatsTest, IpcHandlesZeroCycles)
{
    Stats s;
    EXPECT_EQ(s.ipc(), 0.0);
    s.cycles = 100;
    s.retiredInsts = 250;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
}

TEST(StatsTest, MispredictRates)
{
    Stats s;
    s.condBranches = 90;
    s.condHwMispredicts = 9;
    s.indirectBranches = 10;
    s.indirectHwMispredicts = 1;
    EXPECT_DOUBLE_EQ(s.hwMispredictRate(), 0.10);
    s.usedMispredicts = 5;
    EXPECT_DOUBLE_EQ(s.usedMispredictRate(), 0.05);
}

TEST(StatsTest, AbortRates)
{
    Stats s;
    s.spawnAttempts = 100;
    s.spawnAbortPrefix = 60;
    s.spawnNoContext = 7;
    s.spawns = 33;
    s.abortsPostSpawn = 22;
    EXPECT_DOUBLE_EQ(s.preAllocationAbortRate(), 0.67);
    EXPECT_NEAR(s.postSpawnAbortRate(), 0.6667, 1e-3);
}

TEST(StatsTest, ReportMentionsKeyFields)
{
    Stats s;
    s.cycles = 10;
    s.retiredInsts = 20;
    std::string rep = s.report();
    EXPECT_NE(rep.find("IPC"), std::string::npos);
    EXPECT_NE(rep.find("retired insts"), std::string::npos);
}

TEST(ConfigTest, DefaultsMatchTable3)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.fetchWidth, 16);
    EXPECT_EQ(cfg.windowSize, 512);
    EXPECT_EQ(cfg.numFUs, 16);
    EXPECT_EQ(cfg.maxBranchPredsPerCycle, 3);
    EXPECT_EQ(cfg.frontendDepth + cfg.redirectPenalty, 20);
    EXPECT_EQ(cfg.mem.l1dSize, 64u * 1024);
    EXPECT_EQ(cfg.mem.l2Size, 1024u * 1024);
    EXPECT_EQ(cfg.bpredComponentEntries, 128u * 1024);
    EXPECT_EQ(cfg.bpredSelectorEntries, 64u * 1024);
    EXPECT_EQ(cfg.rasDepth, 32u);
}

TEST(ConfigTest, MechanismDefaultsMatchSection5)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.pathN, 10);
    EXPECT_DOUBLE_EQ(cfg.difficultyThreshold, 0.10);
    EXPECT_EQ(cfg.pathCacheEntries, 8192u);
    EXPECT_EQ(cfg.trainingInterval, 32u);
    EXPECT_EQ(cfg.microRamEntries, 8192u);
    EXPECT_EQ(cfg.predictionCacheEntries, 128u);
    EXPECT_EQ(cfg.prbEntries, 512u);
    EXPECT_EQ(cfg.buildLatency, 100);
}

TEST(ConfigTest, ToStringMentionsMode)
{
    MachineConfig cfg;
    cfg.mode = Mode::Microthread;
    EXPECT_NE(cfg.toString().find("microthread"), std::string::npos);
    EXPECT_NE(cfg.toString().find("512-entry window"),
              std::string::npos);
}

TEST(ConfigTest, ModeNames)
{
    EXPECT_STREQ(modeName(Mode::Baseline), "baseline");
    EXPECT_STREQ(modeName(Mode::OracleDifficultPath),
                 "oracle-difficult-path");
    EXPECT_STREQ(modeName(Mode::Microthread), "microthread");
    EXPECT_STREQ(modeName(Mode::MicrothreadNoPredictions),
                 "microthread-no-predictions");
}

TEST(RunnerTest, GeomeanAndMean)
{
    std::vector<double> v = {1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(v), 2.0);
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_EQ(geomean({}), 0.0);
    EXPECT_EQ(mean({}), 0.0);
}

} // namespace
