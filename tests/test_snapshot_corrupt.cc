/**
 * @file
 * Snapshot-reader resilience: feeding truncated, bit-flipped or
 * outright garbage documents into the resume path must always
 * surface as a catchable SimError — never a crash, hang, or
 * uncontrolled exception. Runs under the tier2-sanitize preset so
 * ASan/UBSan also vet every rejection path for memory errors.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cpu/ssmt_core.hh"
#include "sim/machine_config.hh"
#include "sim/sim_error.hh"
#include "sim/sim_runner.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

class SnapshotCorrupt : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog_ = new isa::Program(workloads::makeSynthetic({}));
        cfg_.mode = sim::Mode::Microthread;
        sim::RunArtifacts artifacts;
        sim::runProgramChecked(*prog_, cfg_, "corrupt-corpus", 0,
                               nullptr, &artifacts, 2000);
        snapshot_ = artifacts.snapshot;
        ASSERT_FALSE(snapshot_.empty());
    }

    static void
    TearDownTestSuite()
    {
        delete prog_;
        prog_ = nullptr;
    }

    /** Resume from @p doc. @return the error code of the SimError it
     *  raised, or ErrorCode::None when the document restored and ran
     *  cleanly. Anything else (other exception types, crashes) fails
     *  the test. Drives restoreMachineSnapshot directly so even an
     *  empty document reaches the reader (runProgramChecked treats an
     *  empty resume text as "run fresh"), then finishes the run
     *  through the public resume path when the restore succeeded. */
    static sim::ErrorCode
    resumeVerdict(const std::string &doc)
    {
        try {
            cpu::SsmtCore core(*prog_, cfg_);
            sim::restoreMachineSnapshot(core, *prog_, cfg_, doc);
            sim::runProgramChecked(*prog_, cfg_, "corrupt", 0,
                                   nullptr, nullptr, 0, &doc);
            return sim::ErrorCode::None;
        } catch (const sim::SimError &err) {
            return err.code();
        }
        // Let any non-SimError exception escape: the harness reports
        // it as the failure it is.
    }

    static isa::Program *prog_;
    static sim::MachineConfig cfg_;
    static std::string snapshot_;
};

isa::Program *SnapshotCorrupt::prog_ = nullptr;
sim::MachineConfig SnapshotCorrupt::cfg_;
std::string SnapshotCorrupt::snapshot_;

TEST_F(SnapshotCorrupt, GarbageDocumentsAreParseErrors)
{
    const char *corpus[] = {
        "",
        "   ",
        "not json",
        "{",
        "{}",
        "[1, 2, 3]",
        "{\"schema\": \"wrong\"}",
        "{\"schema\": \"ssmt-snapshot-v1\"}",
        "{\"schema\": \"ssmt-snapshot-v1\", \"cycle\": }",
        "\xff\xfe\x00\x01 binary noise",
    };
    for (const char *doc : corpus) {
        SCOPED_TRACE(std::string(doc).substr(0, 40));
        EXPECT_EQ(resumeVerdict(doc), sim::ErrorCode::ParseError);
    }
}

TEST_F(SnapshotCorrupt, EveryTruncationIsRejected)
{
    // Sweep prefixes of the real document, clustered near the start
    // (envelope) and sampled through the body. A truncated document
    // must never restore.
    std::vector<size_t> cuts;
    for (size_t len = 0; len < 64 && len < snapshot_.size(); len++)
        cuts.push_back(len);
    for (int i = 1; i < 64; i++)
        cuts.push_back(snapshot_.size() * i / 64);
    for (size_t tail = 1; tail <= 8; tail++)
        if (tail < snapshot_.size())
            cuts.push_back(snapshot_.size() - tail);

    for (size_t len : cuts) {
        SCOPED_TRACE("truncate to " + std::to_string(len) +
                     " bytes of " + std::to_string(snapshot_.size()));
        sim::ErrorCode code =
            resumeVerdict(snapshot_.substr(0, len));
        EXPECT_NE(code, sim::ErrorCode::None);
        EXPECT_TRUE(code == sim::ErrorCode::ParseError ||
                    code == sim::ErrorCode::ConfigInvalid)
            << sim::errorCodeName(code);
    }
}

TEST_F(SnapshotCorrupt, BitFlipsNeverEscapeTheErrorContract)
{
    // Flip a single bit at positions spread across the document.
    // Flips in structural bytes must be rejected as SimError; a flip
    // inside a numeric payload may legitimately restore (there is
    // deliberately no checksum — the store key binds identity) and
    // must then run to completion without tripping anything fatal.
    size_t flips = 0, rejected = 0, survived = 0;
    for (int i = 0; i < 96; i++) {
        size_t pos = (snapshot_.size() * i) / 96;
        std::string doc = snapshot_;
        doc[pos] = static_cast<char>(doc[pos] ^ (1u << (i % 8)));
        if (doc[pos] == snapshot_[pos])
            continue;
        SCOPED_TRACE("flip bit " + std::to_string(i % 8) + " at " +
                     std::to_string(pos));
        flips++;
        sim::ErrorCode code = resumeVerdict(doc);
        if (code == sim::ErrorCode::None) {
            survived++;
        } else {
            rejected++;
            EXPECT_TRUE(code == sim::ErrorCode::ParseError ||
                        code == sim::ErrorCode::ConfigInvalid ||
                        code == sim::ErrorCode::InvariantViolation)
                << sim::errorCodeName(code);
        }
    }
    EXPECT_GT(flips, 0u);
    // The envelope (schema/hash/fingerprint) plus JSON structure make
    // up enough of the document that most flips must be caught.
    EXPECT_GT(rejected, 0u);
    SUCCEED() << flips << " flips: " << rejected << " rejected, "
              << survived << " restored cleanly";
}

TEST_F(SnapshotCorrupt, DuplicatedAndSplicedDocumentsAreRejected)
{
    EXPECT_EQ(resumeVerdict(snapshot_ + snapshot_),
              sim::ErrorCode::ParseError);
    EXPECT_EQ(resumeVerdict(snapshot_ + "garbage tail"),
              sim::ErrorCode::ParseError);
    // Splice the tail of the doc onto its own head at a brace
    // boundary — structurally valid JSON is not enough; the reader
    // must still demand the full schema.
    size_t mid = snapshot_.find("\"machine\"");
    ASSERT_NE(mid, std::string::npos);
    EXPECT_NE(resumeVerdict(snapshot_.substr(0, mid) + "}"),
              sim::ErrorCode::None);
}

} // namespace
