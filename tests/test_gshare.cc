/**
 * @file
 * Tests for the gshare direction predictor.
 */

#include <gtest/gtest.h>

#include "bpred/gshare.hh"

namespace
{

using ssmt::bpred::Gshare;

TEST(GshareTest, LearnsAlwaysTaken)
{
    Gshare g(1024);
    for (int i = 0; i < 64; i++)
        g.update(100, true);
    EXPECT_TRUE(g.predict(100));
}

TEST(GshareTest, LearnsAlwaysNotTaken)
{
    Gshare g(1024);
    for (int i = 0; i < 64; i++)
        g.update(100, false);
    EXPECT_FALSE(g.predict(100));
}

TEST(GshareTest, LearnsGlobalCorrelation)
{
    // Branch B follows branch A's direction; alternate A so B's
    // direction alternates but is fully determined by the history.
    Gshare g(64 * 1024);
    bool a_dir = false;
    int correct = 0;
    for (int i = 0; i < 4000; i++) {
        a_dir = !a_dir;
        g.update(10, a_dir);
        bool pred = g.predict(20);
        if (pred == a_dir)
            correct++;
        g.update(20, a_dir);
    }
    // After warm-up the correlation should be nearly perfect.
    EXPECT_GT(correct, 3800);
}

TEST(GshareTest, HistoryShiftsOnUpdate)
{
    Gshare g(1024);
    EXPECT_EQ(g.history(), 0u);
    g.update(5, true);
    EXPECT_EQ(g.history() & 1, 1u);
    g.update(5, false);
    EXPECT_EQ(g.history() & 1, 0u);
    EXPECT_EQ((g.history() >> 1) & 1, 1u);
}

TEST(GshareTest, PushHistoryWithoutTraining)
{
    Gshare g(1024);
    for (int i = 0; i < 20; i++)
        g.update(100, true);
    // Pushing history changes the index used for pc 100.
    bool before = g.predict(100);
    g.pushHistory(true);
    // The prediction may change (different PHT entry); at minimum
    // the history register moved.
    EXPECT_EQ(g.history() & 1, 1u);
    (void)before;
}

TEST(GshareDeathTest, NonPow2SizePanics)
{
    EXPECT_DEATH(Gshare(1000), "power of two");
}

TEST(GshareTest, DefaultHistoryWidthDerivesLog2Entries)
{
    EXPECT_EQ(Gshare(1024).historyBits(), 10);
    EXPECT_EQ(Gshare(128 * 1024).historyBits(), 17);
    EXPECT_EQ(Gshare(2).historyBits(), 1);
}

TEST(GshareTest, SixtyFourBitHistoryBoundary)
{
    // history_bits == 64 used to evaluate (1ull << 64) - 1, which is
    // undefined; the precomputed mask must keep all 64 bits live.
    Gshare g(1024, 64);
    EXPECT_EQ(g.historyBits(), 64);
    for (int i = 0; i < 64; i++)
        g.pushHistory(true);
    EXPECT_EQ(g.history(), ~0ull);      // bit 63 survived the mask
    g.pushHistory(false);
    EXPECT_EQ(g.history(), ~0ull << 1); // shifted, not wedged
    // The 65th-oldest outcome ages out; predict/update still work.
    for (int i = 0; i < 32; i++)
        g.update(100, true);
    EXPECT_TRUE(g.predict(100));
}

TEST(GshareTest, SixtyThreeBitHistoryMasksTopBit)
{
    Gshare g(1024, 63);
    for (int i = 0; i < 80; i++)
        g.pushHistory(true);
    EXPECT_EQ(g.history(), (1ull << 63) - 1);
}

TEST(GshareTest, OneBitHistoryKeepsOnlyLastOutcome)
{
    Gshare g(1024, 1);
    g.pushHistory(true);
    g.pushHistory(true);
    EXPECT_EQ(g.history(), 1u);
    g.pushHistory(false);
    EXPECT_EQ(g.history(), 0u);
}

TEST(GshareDeathTest, HistoryWidthOutOfRangePanics)
{
    EXPECT_DEATH(Gshare(1024, 65), "history width");
    EXPECT_DEATH(Gshare(1024, -1), "history width");
}

} // namespace
