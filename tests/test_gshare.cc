/**
 * @file
 * Tests for the gshare direction predictor.
 */

#include <gtest/gtest.h>

#include "bpred/gshare.hh"

namespace
{

using ssmt::bpred::Gshare;

TEST(GshareTest, LearnsAlwaysTaken)
{
    Gshare g(1024);
    for (int i = 0; i < 64; i++)
        g.update(100, true);
    EXPECT_TRUE(g.predict(100));
}

TEST(GshareTest, LearnsAlwaysNotTaken)
{
    Gshare g(1024);
    for (int i = 0; i < 64; i++)
        g.update(100, false);
    EXPECT_FALSE(g.predict(100));
}

TEST(GshareTest, LearnsGlobalCorrelation)
{
    // Branch B follows branch A's direction; alternate A so B's
    // direction alternates but is fully determined by the history.
    Gshare g(64 * 1024);
    bool a_dir = false;
    int correct = 0;
    for (int i = 0; i < 4000; i++) {
        a_dir = !a_dir;
        g.update(10, a_dir);
        bool pred = g.predict(20);
        if (pred == a_dir)
            correct++;
        g.update(20, a_dir);
    }
    // After warm-up the correlation should be nearly perfect.
    EXPECT_GT(correct, 3800);
}

TEST(GshareTest, HistoryShiftsOnUpdate)
{
    Gshare g(1024);
    EXPECT_EQ(g.history(), 0u);
    g.update(5, true);
    EXPECT_EQ(g.history() & 1, 1u);
    g.update(5, false);
    EXPECT_EQ(g.history() & 1, 0u);
    EXPECT_EQ((g.history() >> 1) & 1, 1u);
}

TEST(GshareTest, PushHistoryWithoutTraining)
{
    Gshare g(1024);
    for (int i = 0; i < 20; i++)
        g.update(100, true);
    // Pushing history changes the index used for pc 100.
    bool before = g.predict(100);
    g.pushHistory(true);
    // The prediction may change (different PHT entry); at minimum
    // the history register moved.
    EXPECT_EQ(g.history() & 1, 1u);
    (void)before;
}

TEST(GshareDeathTest, NonPow2SizePanics)
{
    EXPECT_DEATH(Gshare(1000), "power of two");
}

} // namespace
