/**
 * @file
 * Tests for the offline path profiler backing Tables 1 and 2.
 */

#include <gtest/gtest.h>

#include "sim/path_profiler.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using sim::PathProfiler;

workloads::SyntheticSpec
spec()
{
    workloads::SyntheticSpec s;
    s.numSites = 4;
    s.elemsPerSite = 32;
    s.takenPercent = {0, 100, 50, 50};
    s.iters = 200;
    return s;
}

TEST(PathProfilerTest, CountsBasics)
{
    PathProfiler profiler({4, 10, 16});
    profiler.profile(workloads::makeSynthetic(spec()), 10'000'000);
    EXPECT_GT(profiler.dynamicInsts(), 100'000u);
    EXPECT_GT(profiler.branchExecs(), 10'000u);
    EXPECT_GT(profiler.mispredicts(), 100u);
    EXPECT_GT(profiler.uniqueBranches(), 2u);
}

TEST(PathProfilerTest, UniquePathsGrowWithN)
{
    // Table 1's structural claim: larger n differentiates more
    // paths.
    PathProfiler profiler({4, 10, 16});
    profiler.profile(workloads::makeSynthetic(spec()), 10'000'000);
    EXPECT_LE(profiler.uniquePaths(4), profiler.uniquePaths(10));
    EXPECT_LE(profiler.uniquePaths(10), profiler.uniquePaths(16));
    EXPECT_GT(profiler.uniquePaths(4), 0u);
}

TEST(PathProfilerTest, ScopeGrowsWithN)
{
    PathProfiler profiler({4, 10, 16});
    profiler.profile(workloads::makeSynthetic(spec()), 10'000'000);
    EXPECT_LT(profiler.avgScope(4), profiler.avgScope(10));
    EXPECT_LT(profiler.avgScope(10), profiler.avgScope(16));
    // Scope of an n-block path is at least n instructions.
    EXPECT_GE(profiler.avgScope(4), 4.0);
}

TEST(PathProfilerTest, DifficultPathsDecreaseWithThreshold)
{
    PathProfiler profiler({10});
    profiler.profile(workloads::makeSynthetic(spec()), 10'000'000);
    uint64_t t05 = profiler.difficultPaths(10, 0.05);
    uint64_t t10 = profiler.difficultPaths(10, 0.10);
    uint64_t t15 = profiler.difficultPaths(10, 0.15);
    EXPECT_GE(t05, t10);
    EXPECT_GE(t10, t15);
    EXPECT_GT(t15, 0u);
}

TEST(PathProfilerTest, CoveragesAreFractions)
{
    PathProfiler profiler({4, 10});
    profiler.profile(workloads::makeSynthetic(spec()), 10'000'000);
    for (double t : {0.05, 0.10, 0.15}) {
        EXPECT_GE(profiler.branchMisCoverage(t), 0.0);
        EXPECT_LE(profiler.branchMisCoverage(t), 1.0);
        EXPECT_GE(profiler.pathExeCoverage(10, t), 0.0);
        EXPECT_LE(profiler.pathExeCoverage(10, t), 1.0);
    }
}

TEST(PathProfilerTest, PathsBeatBranchesOnMisprediction)
{
    // Table 2's central claim on a kernel engineered for it: the
    // shared helper branch mispredicts only along the paths through
    // the 50%-biased sites, so difficult *paths* isolate those
    // mispredictions with less execution coverage than the
    // difficult-branch set. A larger region keeps the big history
    // predictors from simply memorizing the data.
    workloads::SyntheticSpec s;
    s.numSites = 4;
    s.elemsPerSite = 256;
    s.takenPercent = {0, 100, 50, 50};
    s.iters = 80;
    PathProfiler profiler({10});
    profiler.profile(workloads::makeSynthetic(s), 10'000'000);
    double t = 0.10;
    double branch_exe = profiler.branchExeCoverage(t);
    double path_exe = profiler.pathExeCoverage(10, t);
    double branch_mis = profiler.branchMisCoverage(t);
    double path_mis = profiler.pathMisCoverage(10, t);
    // The helper branch aggregates to ~25% misprediction: difficult.
    EXPECT_GT(branch_mis, 0.5);
    EXPECT_GT(branch_exe, 0.0);
    // Difficult paths still capture a large share of mispredictions
    // while excluding the easy-site traversals.
    EXPECT_GT(path_mis, 0.3);
    EXPECT_LT(path_exe, branch_exe);
}

TEST(PathProfilerTest, MispredictsBelowExecutions)
{
    PathProfiler profiler({4});
    profiler.profile(workloads::makeSynthetic(spec()), 10'000'000);
    EXPECT_LT(profiler.mispredicts(), profiler.branchExecs());
}

TEST(PathProfilerDeathTest, UnconfiguredNIsFatal)
{
    PathProfiler profiler({4});
    profiler.profile(workloads::makeSynthetic(spec()), 100'000);
    EXPECT_EXIT((void)profiler.uniquePaths(10),
                testing::ExitedWithCode(1), "not configured");
}

TEST(PathProfilerTest, HonorsMaxInsts)
{
    PathProfiler profiler({4});
    profiler.profile(workloads::makeSynthetic(spec()), 5000);
    EXPECT_LE(profiler.dynamicInsts(), 5000u);
}

} // namespace
