/**
 * @file
 * Parameterized tests over the full 20-benchmark proxy suite:
 * termination, determinism, seed sensitivity, and plausible branch
 * behaviour for every workload.
 */

#include <gtest/gtest.h>

#include "isa/executor.hh"
#include "sim/path_profiler.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using workloads::WorkloadParams;

class WorkloadSuite : public testing::TestWithParam<std::string>
{
  protected:
    isa::Program
    make(const WorkloadParams &p = {})
    {
        return workloads::makeWorkload(GetParam(), p);
    }
};

TEST_P(WorkloadSuite, TerminatesWithinBudget)
{
    isa::Program prog = make();
    isa::RegFile regs;
    isa::MemoryImage mem;
    prog.loadData(mem);
    uint64_t count = isa::run(prog, regs, mem, 20'000'000);
    EXPECT_LT(count, 20'000'000u) << "did not halt";
    // Substantial but bounded work at scale 1.
    EXPECT_GT(count, 50'000u);
    EXPECT_LT(count, 5'000'000u);
}

TEST_P(WorkloadSuite, DeterministicForFixedSeed)
{
    auto run_once = [&]() {
        isa::Program prog = make();
        isa::RegFile regs;
        isa::MemoryImage mem;
        prog.loadData(mem);
        uint64_t count = isa::run(prog, regs, mem, 20'000'000);
        return std::make_pair(count, regs);
    };
    auto [count_a, regs_a] = run_once();
    auto [count_b, regs_b] = run_once();
    EXPECT_EQ(count_a, count_b);
    EXPECT_TRUE(regs_a == regs_b);
}

TEST_P(WorkloadSuite, SeedChangesBehaviour)
{
    WorkloadParams alt;
    alt.seed = 0x1234567;
    isa::Program prog_a = make();
    isa::Program prog_b = make(alt);
    isa::RegFile regs_a, regs_b;
    isa::MemoryImage mem_a, mem_b;
    prog_a.loadData(mem_a);
    prog_b.loadData(mem_b);
    uint64_t count_a = isa::run(prog_a, regs_a, mem_a, 20'000'000);
    uint64_t count_b = isa::run(prog_b, regs_b, mem_b, 20'000'000);
    // Different data must change the dynamic execution (count or
    // final state).
    EXPECT_TRUE(count_a != count_b || !(regs_a == regs_b));
}

TEST_P(WorkloadSuite, ScaleMultipliesWork)
{
    WorkloadParams big;
    big.scale = 2;
    isa::Program prog_1 = make();
    isa::Program prog_2 = make(big);
    isa::RegFile regs;
    isa::MemoryImage mem_1, mem_2;
    prog_1.loadData(mem_1);
    prog_2.loadData(mem_2);
    uint64_t count_1 = isa::run(prog_1, regs, mem_1, 40'000'000);
    isa::RegFile regs2;
    uint64_t count_2 = isa::run(prog_2, regs2, mem_2, 40'000'000);
    EXPECT_GT(count_2, count_1 + count_1 / 2);
}

TEST_P(WorkloadSuite, HasRealisticBranchProfile)
{
    sim::PathProfiler profiler({4});
    profiler.profile(make(), 2'000'000);
    double branch_frac =
        static_cast<double>(profiler.branchExecs()) /
        profiler.dynamicInsts();
    // SPECint-like: terminating branches are a noticeable but not
    // dominant fraction of the stream.
    EXPECT_GT(branch_frac, 0.02) << "too few branches";
    EXPECT_LT(branch_frac, 0.45) << "too many branches";
    // Hardware misprediction rate in a plausible band (eon and
    // m88ksim are near zero by design).
    double mis = static_cast<double>(profiler.mispredicts()) /
                 profiler.branchExecs();
    EXPECT_LT(mis, 0.40);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite, testing::ValuesIn(workloads::workloadNames()),
    [](const auto &info) { return info.param; });

TEST(WorkloadRegistryTest, TwentyBenchmarks)
{
    EXPECT_EQ(workloads::allWorkloads().size(), 20u);
    EXPECT_EQ(workloads::workloadNames().size(), 20u);
}

TEST(WorkloadRegistryTest, NamesMatchPaperSuite)
{
    auto names = workloads::workloadNames();
    for (const char *expected :
         {"comp", "gcc", "go", "ijpeg", "li", "m88ksim", "perl",
          "vortex", "bzip2_2k", "crafty_2k", "eon_2k", "gap_2k",
          "gcc_2k", "gzip_2k", "mcf_2k", "parser_2k", "perlbmk_2k",
          "twolf_2k", "vortex_2k", "vpr_2k"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
}

TEST(WorkloadRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(workloads::makeWorkload("spec2077"),
                testing::ExitedWithCode(1), "unknown workload");
}

TEST(WorkloadRegistryTest, DescriptionsPresent)
{
    for (const auto &info : workloads::allWorkloads())
        EXPECT_FALSE(info.description.empty()) << info.name;
}

TEST(SyntheticKernelTest, BiasControlsDifficulty)
{
    auto mis_rate = [](std::vector<int> biases) {
        workloads::SyntheticSpec spec;
        spec.numSites = static_cast<int>(biases.size());
        spec.takenPercent = std::move(biases);
        spec.iters = 150;
        sim::PathProfiler profiler({4});
        profiler.profile(workloads::makeSynthetic(spec), 5'000'000);
        return static_cast<double>(profiler.mispredicts()) /
               profiler.branchExecs();
    };
    double easy = mis_rate({0, 100, 0, 100});
    double hard = mis_rate({50, 50, 50, 50});
    EXPECT_LT(easy, 0.02);
    EXPECT_GT(hard, 0.10);
}

TEST(SyntheticKernelDeathTest, MismatchedBiasesPanic)
{
    workloads::SyntheticSpec spec;
    spec.numSites = 3;
    spec.takenPercent = {50};
    EXPECT_DEATH(workloads::makeSynthetic(spec), "one entry per site");
}

// ---- parser_2k dictionary trie ----

/** Walk @p word through the trie; true iff every edge exists and the
 *  final node carries the terminal mark. */
bool
trieAccepts(const workloads::ParserTrie &trie,
            const std::vector<uint64_t> &word)
{
    size_t node = 0;
    for (uint64_t ch : word) {
        uint64_t child = trie.nodes[node][ch];
        if (child == 0)
            return false;
        node = child;
    }
    return trie.nodes[node][8] == 1;
}

TEST(ParserTrieTest, EveryDictWordIsAccepted)
{
    // The default build never hits the node cap; every word must be
    // stored whole and accepted.
    workloads::Rng rng(0x5eed);
    workloads::ParserTrie trie =
        workloads::buildParserTrie(rng, 2048);
    EXPECT_EQ(trie.dict.size(), 160u);
    EXPECT_LT(trie.nodes.size(), 2048u);
    for (const auto &word : trie.dict)
        EXPECT_TRUE(trieAccepts(trie, word));
}

TEST(ParserTrieTest, NodeCapKeepsDictAndTrieConsistent)
{
    // A cap small enough to truncate insertions mid-word: the buggy
    // build marked the partial prefix terminal while the dict kept
    // the full word, so dict words existed that the trie rejected.
    for (size_t cap : {2u, 8u, 32u, 128u}) {
        workloads::Rng rng(0x5eed);
        workloads::ParserTrie trie =
            workloads::buildParserTrie(rng, cap);
        EXPECT_LE(trie.nodes.size(), cap);
        EXPECT_LE(trie.dict.size(), 160u);
        for (const auto &word : trie.dict) {
            EXPECT_FALSE(word.empty());
            EXPECT_TRUE(trieAccepts(trie, word))
                << "cap " << cap << ": dict word rejected";
        }
    }
}

TEST(ParserTrieTest, BuildConsumesRngDeterministically)
{
    // Two builds from the same seed leave the stream in the same
    // place — the workload's text generation depends on it.
    workloads::Rng a(0x5eed), b(0x5eed);
    workloads::buildParserTrie(a, 2048);
    workloads::buildParserTrie(b, 64);  // cap changes nothing drawn
    EXPECT_EQ(a.next(), b.next());
}

} // namespace
