/**
 * @file
 * Dedicated Arena unit tests: alignment guarantees across the power-
 * of-two range, chunk growth and the undersized-chunk skip path,
 * reset()'s retain-and-rewind contract, and ScratchVector growth
 * across chunk boundaries. (test_flat_map.cc holds the original
 * smoke coverage; these pin the allocator edges directly.)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "sim/arena.hh"

namespace
{

using namespace ssmt;

TEST(ArenaTest, AllocationsRespectRequestedAlignment)
{
    sim::Arena arena;
    for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
        // Offset the cursor by an odd amount first so alignment is
        // actually exercised, not inherited from a fresh chunk.
        arena.allocate(3, 1);
        void *p = arena.allocate(8, align);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
            << "align " << align;
    }
}

TEST(ArenaTest, ZeroByteAllocationsYieldDistinctPointers)
{
    sim::Arena arena;
    void *a = arena.allocate(0, 1);
    void *b = arena.allocate(0, 1);
    EXPECT_NE(a, b);
}

TEST(ArenaTest, AllocationsWithinAChunkDoNotOverlap)
{
    sim::Arena arena(1024);
    std::vector<unsigned char *> blocks;
    for (int i = 0; i < 64; i++) {
        auto *p = static_cast<unsigned char *>(arena.allocate(16, 8));
        std::memset(p, i, 16);
        blocks.push_back(p);
    }
    for (int i = 0; i < 64; i++)
        for (int j = 0; j < 16; j++)
            EXPECT_EQ(blocks[i][j], static_cast<unsigned char>(i))
                << "block " << i << " byte " << j;
}

TEST(ArenaTest, GrowsByChunksAndResetReusesThem)
{
    sim::Arena arena(1024);
    EXPECT_EQ(arena.chunkCount(), 0u);
    for (int i = 0; i < 100; i++)
        arena.allocate(100, 8);
    size_t grown = arena.chunkCount();
    EXPECT_GT(grown, 1u);

    // After reset the same workload fits in the retained chunks.
    for (int round = 0; round < 5; round++) {
        arena.reset();
        for (int i = 0; i < 100; i++)
            arena.allocate(100, 8);
        EXPECT_EQ(arena.chunkCount(), grown) << "round " << round;
    }
}

TEST(ArenaTest, ResetRewindsToTheSameStorage)
{
    sim::Arena arena;
    void *first = arena.allocate(64, 16);
    arena.allocate(512, 8);
    arena.reset();
    // The first allocation after reset lands back on chunk 0's
    // storage (same bytes, recycled).
    void *again = arena.allocate(64, 16);
    EXPECT_EQ(first, again);
}

TEST(ArenaTest, OversizedRequestGetsADedicatedChunk)
{
    sim::Arena arena(1024);
    arena.allocate(16, 8);
    EXPECT_EQ(arena.chunkCount(), 1u);

    // Far larger than the chunk size: served from its own chunk,
    // not by splitting across defaults.
    auto *big =
        static_cast<unsigned char *>(arena.allocate(10000, 8));
    std::memset(big, 0xab, 10000);
    EXPECT_EQ(arena.chunkCount(), 2u);
    EXPECT_EQ(big[9999], 0xab);
}

TEST(ArenaTest, UndersizedRetainedChunksAreSkippedNotResized)
{
    // Build a small-then-big chunk list, reset, then make a request
    // only the big chunk can serve: the undersized first chunk is
    // skipped, no new chunk is acquired.
    sim::Arena arena(1024);
    arena.allocate(16, 8);          // chunk 0: 1024 bytes
    arena.allocate(8000, 8);        // chunk 1: >= 8000 bytes
    ASSERT_EQ(arena.chunkCount(), 2u);

    arena.reset();
    arena.allocate(4000, 8);        // skips chunk 0, reuses chunk 1
    EXPECT_EQ(arena.chunkCount(), 2u);

    // A later small request must not go back to the skipped chunk
    // (it is parked until the next reset) — but the arena still
    // serves it correctly from wherever the cursor is.
    void *p = arena.allocate(16, 8);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(arena.chunkCount(), 2u);
}

TEST(ArenaTest, ScratchVectorGrowsAcrossChunkBoundaries)
{
    sim::Arena arena(1024);
    sim::ArenaAllocator<uint64_t> alloc(arena);
    sim::ScratchVector<uint64_t> v(alloc);
    for (uint64_t i = 0; i < 1000; i++)
        v.push_back(i);
    ASSERT_EQ(v.size(), 1000u);
    for (uint64_t i = 0; i < 1000; i++)
        EXPECT_EQ(v[i], i);
    EXPECT_GT(arena.chunkCount(), 1u);
}

TEST(ArenaTest, ScratchVectorsShareTheArenaAcrossResets)
{
    sim::Arena arena;
    for (int round = 0; round < 3; round++) {
        arena.reset();
        sim::ArenaAllocator<uint32_t> alloc(arena);
        sim::ScratchVector<uint32_t> a(alloc);
        sim::ScratchVector<uint32_t> b(alloc);
        for (uint32_t i = 0; i < 100; i++) {
            a.push_back(i);
            b.push_back(1000 + i);
        }
        for (uint32_t i = 0; i < 100; i++) {
            EXPECT_EQ(a[i], i);
            EXPECT_EQ(b[i], 1000 + i);
        }
    }
}

} // namespace
