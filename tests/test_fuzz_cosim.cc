/**
 * @file
 * Differential fuzzing: for a sweep of random structured programs,
 * the timing core — in every machine mode, with microthreads
 * spawning, aborting and speculating — must retire exactly the
 * instruction stream the functional executor defines and end with
 * identical architectural state. Any timing-model bug that leaks
 * into architecture (stale microthread state, bad spawn snapshots,
 * wrong-path contamination) fails here.
 */

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "isa/executor.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

class FuzzCosim : public testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzCosim, AllModesMatchFunctionalExecution)
{
    isa::Program prog = workloads::makeRandomProgram(GetParam());

    isa::RegFile ref_regs;
    isa::MemoryImage ref_mem;
    prog.loadData(ref_mem);
    uint64_t ref_count = isa::run(prog, ref_regs, ref_mem,
                                  50'000'000);
    ASSERT_LT(ref_count, 50'000'000u) << "generator made a hang";

    for (sim::Mode mode :
         {sim::Mode::Baseline, sim::Mode::OracleDifficultPath,
          sim::Mode::Microthread,
          sim::Mode::MicrothreadNoPredictions,
          sim::Mode::OracleAllBranches}) {
        sim::MachineConfig cfg;
        cfg.mode = mode;
        cfg.builder.pruningEnabled =
            mode == sim::Mode::Microthread;
        // Stress the mechanism harder than the defaults do.
        cfg.trainingInterval = 8;
        cfg.pathN = 6;
        cpu::SsmtCore core(prog, cfg);
        core.run();
        ASSERT_EQ(core.stats().retiredInsts, ref_count)
            << sim::modeName(mode) << " seed " << GetParam();
        for (int r = 0; r < isa::kNumRegs; r++) {
            ASSERT_EQ(
                core.archRegs().read(static_cast<isa::RegIndex>(r)),
                ref_regs.read(static_cast<isa::RegIndex>(r)))
                << sim::modeName(mode) << " seed " << GetParam()
                << " r" << r;
        }
    }
}

TEST_P(FuzzCosim, TimingInvariantsHold)
{
    isa::Program prog = workloads::makeRandomProgram(GetParam());
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.trainingInterval = 8;
    cfg.pathN = 6;
    sim::Stats stats = sim::runProgram(prog, cfg);
    // Cycles can never undercut the dataflow/width lower bound.
    EXPECT_GE(stats.cycles,
              stats.retiredInsts / static_cast<uint64_t>(16));
    // Spawn accounting must balance.
    EXPECT_EQ(stats.spawnAttempts, stats.spawnAbortPrefix +
                                       stats.spawnNoContext +
                                       stats.spawns);
    // Prediction classes never exceed Store_PCache completions.
    EXPECT_LE(stats.predEarly + stats.predLate + stats.predUseless +
                  stats.predNeverReached,
              stats.microOpsExecuted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCosim,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                         55, 89, 144, 233, 377, 610,
                                         987));

TEST(FuzzGeneratorTest, DeterministicPerSeed)
{
    isa::Program a = workloads::makeRandomProgram(42);
    isa::Program b = workloads::makeRandomProgram(42);
    ASSERT_EQ(a.size(), b.size());
    for (uint64_t pc = 0; pc < a.size(); pc++)
        ASSERT_TRUE(a.inst(pc) == b.inst(pc)) << pc;
}

TEST(FuzzGeneratorTest, SeedsDiffer)
{
    isa::Program a = workloads::makeRandomProgram(1);
    isa::Program b = workloads::makeRandomProgram(2);
    bool differs = a.size() != b.size();
    for (uint64_t pc = 0; !differs && pc < a.size(); pc++)
        differs = !(a.inst(pc) == b.inst(pc));
    EXPECT_TRUE(differs);
}

TEST(FuzzGeneratorTest, FuelBoundsExecution)
{
    isa::Program prog = workloads::makeRandomProgram(7, 24, 500);
    isa::RegFile regs;
    isa::MemoryImage mem;
    prog.loadData(mem);
    uint64_t count = isa::run(prog, regs, mem, 10'000'000);
    // ~500 blocks of bounded size, plus prologue.
    EXPECT_LT(count, 500u * 40 + 100);
}

} // namespace
