/**
 * @file
 * Whole-machine snapshot/resume tests: the keystone byte-identity
 * property, snapshot determinism, warmup fan-out across modes,
 * rejection of mismatched programs/configs/documents, and resumable
 * batches (BatchPolicy::resumeOnWatchdog).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/metrics.hh"
#include "sim/sim_error.hh"
#include "sim/sim_runner.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

workloads::WorkloadInfo
findWorkload(const std::string &name)
{
    for (const auto &info : workloads::allWorkloads())
        if (info.name == name)
            return info;
    ADD_FAILURE() << "workload " << name << " not registered";
    return workloads::allWorkloads().front();
}

sim::MachineConfig
testConfig(sim::Mode mode, uint64_t sample_interval = 0)
{
    sim::MachineConfig cfg = sim::goldenMachineConfig();
    cfg.mode = mode;
    cfg.sampleInterval = sample_interval;
    return cfg;
}

std::string
goldenText(const std::string &name, const sim::Stats &stats)
{
    return sim::goldenJson({name, sim::kGoldenConfigName, stats});
}

TEST(SnapshotResume, ResumeIsByteIdenticalToStraightThrough)
{
    isa::Program prog = findWorkload("comp").make({});
    sim::MachineConfig cfg =
        testConfig(sim::Mode::Microthread, /*sample_interval=*/500);

    sim::RunArtifacts straightArt;
    sim::Stats straight = sim::runProgramChecked(
        prog, cfg, "comp", 0, nullptr, &straightArt,
        /*snapshot_at_cycle=*/5000);
    ASSERT_FALSE(straightArt.snapshot.empty());
    ASSERT_EQ(straightArt.snapshotCycle, 5000u);
    EXPECT_EQ(sim::snapshotCycle(straightArt.snapshot), 5000u);
    EXPECT_EQ(sim::snapshotLabel(straightArt.snapshot), "comp");

    sim::RunArtifacts resumedArt;
    sim::Stats resumed = sim::runProgramChecked(
        prog, cfg, "comp", 0, nullptr, &resumedArt, 0,
        &straightArt.snapshot);

    EXPECT_EQ(goldenText("comp", resumed), goldenText("comp", straight));
    EXPECT_EQ(sim::seriesJson(resumedArt.series),
              sim::seriesJson(straightArt.series));
}

TEST(SnapshotResume, SnapshotsAreDeterministicAndResaveStable)
{
    isa::Program prog = findWorkload("comp").make({});
    sim::MachineConfig cfg = testConfig(sim::Mode::Microthread);

    // Two independent straight runs checkpoint byte-identically.
    sim::RunArtifacts a, b;
    sim::runProgramChecked(prog, cfg, "comp", 0, nullptr, &a, 5000);
    sim::runProgramChecked(prog, cfg, "comp", 0, nullptr, &b, 5000);
    ASSERT_FALSE(a.snapshot.empty());
    EXPECT_EQ(a.snapshot, b.snapshot);

    // Restore-then-recheckpoint at a later cycle matches the
    // straight run's checkpoint at that cycle: restore loses nothing.
    sim::RunArtifacts straightLater, resumedLater;
    sim::runProgramChecked(prog, cfg, "comp", 0, nullptr,
                           &straightLater, 7000);
    sim::runProgramChecked(prog, cfg, "comp", 0, nullptr,
                           &resumedLater, 7000, &a.snapshot);
    ASSERT_FALSE(straightLater.snapshot.empty());
    EXPECT_EQ(resumedLater.snapshot, straightLater.snapshot);
}

TEST(SnapshotResume, WarmupSnapshotFansOutAcrossModes)
{
    isa::Program prog = findWorkload("comp").make({});
    sim::MachineConfig warmup = testConfig(sim::Mode::Baseline);

    sim::RunArtifacts art;
    sim::Stats baseline = sim::runProgramChecked(
        prog, warmup, "comp", 0, nullptr, &art, 5000);
    ASSERT_FALSE(art.snapshot.empty());

    const sim::Mode fan[] = {sim::Mode::OracleDifficultPath,
                             sim::Mode::Microthread,
                             sim::Mode::OracleAllBranches};
    for (sim::Mode mode : fan) {
        sim::MachineConfig cfg = testConfig(mode);
        sim::Stats stats = sim::runProgramChecked(
            prog, cfg, "comp/fanout", 0, nullptr, nullptr, 0,
            &art.snapshot);
        // The machine fetches only correct-path instructions, so the
        // committed stream is mode-invariant even across a restore.
        EXPECT_EQ(stats.retiredInsts, baseline.retiredInsts)
            << sim::modeName(mode);
        EXPECT_EQ(stats.condBranches, baseline.condBranches)
            << sim::modeName(mode);
    }
}

TEST(SnapshotResume, RejectsWrongProgram)
{
    isa::Program comp = findWorkload("comp").make({});
    isa::Program go = findWorkload("go").make({});
    sim::MachineConfig cfg = testConfig(sim::Mode::Microthread);

    sim::RunArtifacts art;
    sim::runProgramChecked(comp, cfg, "comp", 0, nullptr, &art, 5000);
    ASSERT_FALSE(art.snapshot.empty());

    try {
        sim::runProgramChecked(go, cfg, "go", 0, nullptr, nullptr, 0,
                               &art.snapshot);
        FAIL() << "expected SimError(ConfigInvalid)";
    } catch (const sim::SimError &err) {
        EXPECT_EQ(err.code(), sim::ErrorCode::ConfigInvalid);
    }
}

TEST(SnapshotResume, RejectsStructurallyDifferentConfig)
{
    isa::Program prog = findWorkload("comp").make({});
    sim::MachineConfig cfg = testConfig(sim::Mode::Microthread);

    sim::RunArtifacts art;
    sim::runProgramChecked(prog, cfg, "comp", 0, nullptr, &art, 5000);
    ASSERT_FALSE(art.snapshot.empty());

    sim::MachineConfig narrower = cfg;
    narrower.windowSize /= 2;
    try {
        sim::runProgramChecked(prog, narrower, "comp", 0, nullptr,
                               nullptr, 0, &art.snapshot);
        FAIL() << "expected SimError(ConfigInvalid)";
    } catch (const sim::SimError &err) {
        EXPECT_EQ(err.code(), sim::ErrorCode::ConfigInvalid);
    }
}

TEST(SnapshotResume, RejectsMalformedDocument)
{
    isa::Program prog = findWorkload("comp").make({});
    sim::MachineConfig cfg = testConfig(sim::Mode::Microthread);
    std::string garbage = "{\"schema\": \"ssmt-snapshot-v1\", ";
    try {
        sim::runProgramChecked(prog, cfg, "comp", 0, nullptr, nullptr,
                               0, &garbage);
        FAIL() << "expected SimError(ParseError)";
    } catch (const sim::SimError &err) {
        EXPECT_EQ(err.code(), sim::ErrorCode::ParseError);
    }
}

TEST(SnapshotResume, BatchResumesAcrossWatchdogSlices)
{
    workloads::WorkloadInfo info = findWorkload("comp");
    sim::MachineConfig cfg = testConfig(sim::Mode::Microthread);

    sim::Stats straight =
        sim::runProgramChecked(info.make({}), cfg, "comp");
    ASSERT_GT(straight.cycles, 30000u);     // the budget must trip

    sim::BatchPolicy policy;
    policy.cycleBudget = 30000;
    policy.maxRetries = 8;
    policy.resumeOnWatchdog = true;

    std::vector<sim::BatchJob> batch = {
        {"comp", info.make({}), cfg}};
    std::vector<sim::BatchResult> results =
        sim::BatchRunner(1).run(batch, policy);
    ASSERT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_GT(results[0].attempts, 1u);
    EXPECT_EQ(goldenText("comp", results[0].stats),
              goldenText("comp", straight));
}

TEST(SnapshotResume, ResumedBatchesAgreeAcrossJobCounts)
{
    const char *names[] = {"comp", "go", "li", "parser_2k"};
    sim::MachineConfig cfg =
        testConfig(sim::Mode::Microthread, /*sample_interval=*/1000);

    std::vector<sim::BatchJob> batch;
    for (const char *name : names)
        batch.push_back({name, findWorkload(name).make({}), cfg});

    sim::BatchPolicy policy;
    policy.cycleBudget = 100000;
    policy.maxRetries = 10;
    policy.resumeOnWatchdog = true;

    std::vector<sim::BatchResult> serial =
        sim::BatchRunner(1).run(batch, policy);
    std::vector<sim::BatchResult> parallel =
        sim::BatchRunner(4).run(batch, policy);
    for (size_t i = 0; i < batch.size(); i++) {
        ASSERT_TRUE(serial[i].ok()) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
        EXPECT_EQ(goldenText(batch[i].name, parallel[i].stats),
                  goldenText(batch[i].name, serial[i].stats));
        EXPECT_EQ(sim::seriesJson(parallel[i].artifacts.series),
                  sim::seriesJson(serial[i].artifacts.series));
        EXPECT_EQ(parallel[i].attempts, serial[i].attempts);
    }
}

} // namespace

