/**
 * @file
 * Edge-case tests for the minimal JSON reader — in particular the
 * number paths: negative values, literals beyond uint64_t range,
 * exponent forms and "-0" must never reach the undefined
 * double-to-uint64_t cast in JsonValue::u64().
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "sim/golden.hh"
#include "sim/json_text.hh"
#include "sim/stats.hh"

namespace
{

using namespace ssmt;
using sim::JsonValue;

JsonValue
parse(const std::string &text)
{
    JsonValue root;
    std::string err;
    EXPECT_TRUE(sim::parseJson(text, root, &err)) << err;
    return root;
}

TEST(JsonTextTest, NegativeIntegerFallsBackInU64)
{
    JsonValue root = parse("{\"n\": -5}");
    const JsonValue *v = root.find("n");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, JsonValue::Kind::Number);
    EXPECT_FALSE(v->isInteger);
    EXPECT_DOUBLE_EQ(v->number, -5.0);
    // A negative double cannot represent a counter; u64 must take
    // the fallback, not cast (which would be undefined behavior).
    EXPECT_EQ(root.u64("n", 42), 42u);
}

TEST(JsonTextTest, Uint64MaxParsesExactly)
{
    JsonValue root = parse("{\"n\": 18446744073709551615}");
    const JsonValue *v = root.find("n");
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->isInteger);
    EXPECT_EQ(v->integer, UINT64_MAX);
    EXPECT_EQ(root.u64("n", 0), UINT64_MAX);
}

TEST(JsonTextTest, BeyondUint64RangeFallsBack)
{
    // 2^64 overflows strtoull (ERANGE): the token must lose its
    // exact-integer claim and u64 must range-check the double view.
    JsonValue root = parse("{\"n\": 18446744073709551616}");
    const JsonValue *v = root.find("n");
    ASSERT_NE(v, nullptr);
    EXPECT_FALSE(v->isInteger);
    EXPECT_EQ(root.u64("n", 7), 7u);

    // Way beyond double range: strtod yields +inf.
    JsonValue huge = parse("{\"n\": 1" + std::string(400, '0') + "}");
    EXPECT_EQ(huge.u64("n", 9), 9u);
}

TEST(JsonTextTest, ExponentFormConverts)
{
    JsonValue root = parse("{\"n\": 1e3, \"frac\": 2.5}");
    const JsonValue *v = root.find("n");
    ASSERT_NE(v, nullptr);
    EXPECT_FALSE(v->isInteger);
    EXPECT_EQ(root.u64("n", 0), 1000u);
    EXPECT_EQ(root.u64("frac", 0), 2u);     // truncates like a cast
}

TEST(JsonTextTest, NegativeZeroIsZero)
{
    JsonValue root = parse("{\"n\": -0}");
    const JsonValue *v = root.find("n");
    ASSERT_NE(v, nullptr);
    EXPECT_FALSE(v->isInteger);
    EXPECT_EQ(root.u64("n", 5), 0u);
}

TEST(JsonTextTest, NonNumberAndMissingKeysFallBack)
{
    JsonValue root = parse("{\"s\": \"text\", \"b\": true}");
    EXPECT_EQ(root.u64("s", 3), 3u);
    EXPECT_EQ(root.u64("b", 3), 3u);
    EXPECT_EQ(root.u64("absent", 3), 3u);
}

TEST(JsonTextTest, EveryStatsCounterRoundTripsAtUint64Max)
{
    // Serialize the full canonical counter set at the most hostile
    // value and read each one back exactly: no counter name may
    // lose bits through the parser.
    sim::Stats zero{};
    auto fields = sim::flattenStats(zero);
    ASSERT_FALSE(fields.empty());
    std::string doc = "{";
    for (size_t i = 0; i < fields.size(); i++) {
        if (i)
            doc += ", ";
        doc += "\"" + fields[i].first + "\": 18446744073709551615";
    }
    doc += "}";

    JsonValue root = parse(doc);
    for (const auto &field : fields)
        EXPECT_EQ(root.u64(field.first, 0), UINT64_MAX) << field.first;
}

} // namespace
