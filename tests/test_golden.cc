/**
 * @file
 * Tests for the golden-stats subsystem: canonical serialization must
 * round-trip, be byte-identical regardless of BatchRunner
 * parallelism, and the drift allowlist must follow its grammar.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

TEST(GoldenTest, FlattenCoversEveryCounterExactlyOnce)
{
    sim::Stats s;
    auto flat = sim::flattenStats(s);
    // The static_assert in golden.cc pins the table size to
    // sizeof(Stats); this spells the same fact out at runtime.
    EXPECT_EQ(flat.size() * sizeof(uint64_t), sizeof(sim::Stats));
    for (size_t i = 0; i < flat.size(); i++)
        for (size_t j = i + 1; j < flat.size(); j++)
            EXPECT_NE(flat[i].first, flat[j].first);
}

TEST(GoldenTest, SerializeParseRoundTrip)
{
    sim::Stats s;
    // Give every counter a distinct value so a swapped or dropped
    // field cannot cancel out.
    auto flat = sim::flattenStats(s);
    sim::GoldenRun in{"roundtrip", sim::kGoldenConfigName, s};
    {
        // Rebuild the stats through the parser after setting each
        // counter via its serialized name.
        std::string doc = "{\n  \"schema\": \"";
        doc += sim::kGoldenSchema;
        doc += "\",\n  \"workload\": \"roundtrip\",\n"
               "  \"config\": \"microthread-default\",\n"
               "  \"counters\": {\n";
        for (size_t i = 0; i < flat.size(); i++) {
            doc += "    \"" + flat[i].first +
                   "\": " + std::to_string(1000 + 7 * i) +
                   (i + 1 < flat.size() ? ",\n" : "\n");
        }
        doc += "  }\n}\n";
        std::string err;
        ASSERT_TRUE(sim::parseGolden(doc, in, &err)) << err;
    }
    auto populated = sim::flattenStats(in.stats);
    for (size_t i = 0; i < populated.size(); i++)
        EXPECT_EQ(populated[i].second, 1000 + 7 * i)
            << populated[i].first;

    // Emit and parse back: every counter survives.
    sim::GoldenRun out;
    std::string err;
    ASSERT_TRUE(sim::parseGolden(sim::goldenJson(in), out, &err))
        << err;
    EXPECT_EQ(out.workload, in.workload);
    EXPECT_EQ(out.config, in.config);
    EXPECT_TRUE(sim::diffStats(in.stats, out.stats).empty());
}

TEST(GoldenTest, ParseRejectsBadDocuments)
{
    sim::GoldenRun run;
    std::string err;
    EXPECT_FALSE(sim::parseGolden("", run, &err));
    EXPECT_FALSE(sim::parseGolden("[]", run, &err));
    EXPECT_FALSE(sim::parseGolden(
        "{\"schema\": \"other-v1\", \"counters\": {}}", run, &err));
    EXPECT_NE(err.find("schema"), std::string::npos);
    // Unknown counters are an error, not a silent skip.
    std::string unknown = "{\"schema\": \"";
    unknown += sim::kGoldenSchema;
    unknown += "\", \"workload\": \"w\", \"config\": \"c\","
               " \"counters\": {\"noSuchCounter\": 1}}";
    EXPECT_FALSE(sim::parseGolden(unknown, run, &err));
    EXPECT_NE(err.find("noSuchCounter"), std::string::npos);
    // Non-integer counter values are an error.
    std::string fractional = "{\"schema\": \"";
    fractional += sim::kGoldenSchema;
    fractional += "\", \"workload\": \"w\", \"config\": \"c\","
                  " \"counters\": {\"cycles\": 1.5}}";
    EXPECT_FALSE(sim::parseGolden(fractional, run, &err));
}

TEST(GoldenTest, SnapshotsAreJobCountInvariant)
{
    // The determinism claim verify-golden rests on: running the same
    // jobs with 1 worker and with 8 produces byte-identical golden
    // documents. Three workloads with different character.
    const std::vector<std::string> names = {"mcf_2k", "li", "go"};
    std::vector<sim::BatchJob> batch;
    for (const std::string &name : names)
        batch.push_back({name, workloads::makeWorkload(name),
                         sim::goldenMachineConfig()});

    std::vector<sim::BatchResult> serial =
        sim::BatchRunner(1).run(batch);
    std::vector<sim::BatchResult> parallel =
        sim::BatchRunner(8).run(batch);
    for (size_t i = 0; i < names.size(); i++) {
        sim::GoldenRun a{names[i], sim::kGoldenConfigName,
                         serial[i].stats};
        sim::GoldenRun b{names[i], sim::kGoldenConfigName,
                         parallel[i].stats};
        EXPECT_EQ(sim::goldenJson(a), sim::goldenJson(b)) << names[i];
    }
}

TEST(GoldenTest, DiffStatsReportsExactlyTheChangedCounters)
{
    sim::Stats a;
    a.cycles = 100;
    a.retiredInsts = 50;
    sim::Stats b = a;
    EXPECT_TRUE(sim::diffStats(a, b).empty());

    b.cycles = 120;
    b.build.built = 3;
    auto drifts = sim::diffStats(a, b);
    ASSERT_EQ(drifts.size(), 2u);
    EXPECT_EQ(drifts[0].counter, "cycles");
    EXPECT_EQ(drifts[0].golden, 100u);
    EXPECT_EQ(drifts[0].candidate, 120u);
    EXPECT_NEAR(drifts[0].relative(), 0.2, 1e-9);
    EXPECT_EQ(drifts[1].counter, "build.built");
    EXPECT_EQ(drifts[1].golden, 0u);
    EXPECT_NEAR(drifts[1].relative(), 1.0, 1e-9);
}

TEST(GoldenTest, AllowlistGrammar)
{
    sim::DriftAllowlist list = sim::DriftAllowlist::parse(
        "# comment line\n"
        "cycles\n"
        "  mcf_2k:usedMispredicts  # trailing comment\n"
        "\n"
        "build.totalOps");
    ASSERT_EQ(list.entries.size(), 3u);
    // Bare counter: every workload.
    EXPECT_TRUE(list.allows("go", "cycles"));
    EXPECT_TRUE(list.allows("mcf_2k", "cycles"));
    // Scoped entry: that workload only.
    EXPECT_TRUE(list.allows("mcf_2k", "usedMispredicts"));
    EXPECT_FALSE(list.allows("go", "usedMispredicts"));
    // Dotted build counters work like any other name.
    EXPECT_TRUE(list.allows("li", "build.totalOps"));
    EXPECT_FALSE(list.allows("li", "build.built"));
}

TEST(GoldenTest, GoldenConfigIsTheFullMechanism)
{
    sim::MachineConfig cfg = sim::goldenMachineConfig();
    EXPECT_EQ(cfg.mode, sim::Mode::Microthread);
    EXPECT_EQ(sim::goldenFileName("mcf_2k"), "mcf_2k.json");
}

} // namespace
