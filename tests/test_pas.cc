/**
 * @file
 * Tests for the PAs per-address two-level predictor.
 */

#include <gtest/gtest.h>

#include "bpred/pas.hh"

namespace
{

using ssmt::bpred::Pas;

TEST(PasTest, LearnsBias)
{
    Pas p;
    for (int i = 0; i < 64; i++)
        p.update(7, true);
    EXPECT_TRUE(p.predict(7));
}

/** PAs' signature ability: periodic local patterns. */
class PasPeriodic : public testing::TestWithParam<int>
{
};

TEST_P(PasPeriodic, LearnsPeriodKPattern)
{
    int period = GetParam();
    Pas p(1024, 12, 64 * 1024);
    // Pattern: taken once every `period` occurrences.
    int correct = 0;
    int total = 0;
    for (int i = 0; i < 6000; i++) {
        bool dir = (i % period) == 0;
        if (i > 2000) {
            total++;
            if (p.predict(42) == dir)
                correct++;
        }
        p.update(42, dir);
    }
    EXPECT_GT(correct, total * 95 / 100) << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(Periods, PasPeriodic,
                         testing::Values(2, 3, 4, 6, 8, 11));

TEST(PasTest, LocalHistoryTracksPerBranch)
{
    Pas p;
    p.update(1, true);
    p.update(1, false);
    p.update(2, true);
    EXPECT_EQ(p.localHistory(1), 0b10u);
    EXPECT_EQ(p.localHistory(2), 0b1u);
}

TEST(PasTest, IndependentBranchesDoNotShareHistory)
{
    Pas p(1024, 12, 64 * 1024);
    // Branch 100 always taken, branch 101 always not taken.
    for (int i = 0; i < 64; i++) {
        p.update(100, true);
        p.update(101, false);
    }
    EXPECT_TRUE(p.predict(100));
    EXPECT_FALSE(p.predict(101));
}

} // namespace
