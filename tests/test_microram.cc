/**
 * @file
 * Tests for the MicroRAM routine store and spawn index.
 */

#include <gtest/gtest.h>

#include "core/microram.hh"

namespace
{

using namespace ssmt::core;

MicroThread
makeThread(PathId id, uint64_t spawn_pc)
{
    MicroThread t;
    t.pathId = id;
    t.spawnPc = spawn_pc;
    MicroOp op;
    op.inst.op = ssmt::isa::Opcode::StPCache;
    t.ops.push_back(op);
    return t;
}

TEST(MicroRamTest, InsertFindRemove)
{
    MicroRam ram(8);
    EXPECT_TRUE(ram.insert(makeThread(1, 100)));
    ASSERT_NE(ram.find(1), nullptr);
    EXPECT_EQ(ram.find(1)->spawnPc, 100u);
    EXPECT_TRUE(ram.contains(1));
    ram.remove(1);
    EXPECT_EQ(ram.find(1), nullptr);
    EXPECT_EQ(ram.removals(), 1u);
}

TEST(MicroRamTest, CapacityEnforced)
{
    MicroRam ram(2);
    EXPECT_TRUE(ram.insert(makeThread(1, 10)));
    EXPECT_TRUE(ram.insert(makeThread(2, 20)));
    EXPECT_FALSE(ram.insert(makeThread(3, 30)));
    EXPECT_EQ(ram.rejectedFull(), 1u);
    EXPECT_EQ(ram.size(), 2u);
    // Removing frees a slot.
    ram.remove(1);
    EXPECT_TRUE(ram.insert(makeThread(3, 30)));
}

TEST(MicroRamTest, RebuildReplacesInPlaceEvenWhenFull)
{
    MicroRam ram(1);
    EXPECT_TRUE(ram.insert(makeThread(1, 10)));
    MicroThread rebuilt = makeThread(1, 44);
    EXPECT_TRUE(ram.insert(rebuilt));   // same path: replace
    EXPECT_EQ(ram.size(), 1u);
    EXPECT_EQ(ram.find(1)->spawnPc, 44u);
    // The spawn index moved from pc 10 to pc 44.
    EXPECT_TRUE(ram.routinesAt(10).empty());
    ASSERT_EQ(ram.routinesAt(44).size(), 1u);
}

TEST(MicroRamTest, SpawnIndexGroupsByPc)
{
    MicroRam ram(8);
    ram.insert(makeThread(1, 100));
    ram.insert(makeThread(2, 100));
    ram.insert(makeThread(3, 200));
    EXPECT_EQ(ram.routinesAt(100).size(), 2u);
    EXPECT_EQ(ram.routinesAt(200).size(), 1u);
    EXPECT_TRUE(ram.routinesAt(300).empty());
    ram.remove(1);
    ASSERT_EQ(ram.routinesAt(100).size(), 1u);
    EXPECT_EQ(ram.routinesAt(100)[0].id, 2u);
    EXPECT_EQ(ram.routinesAt(100)[0].thread.get(), ram.find(2));
}

TEST(MicroRamTest, SharedHandleOutlivesRemoval)
{
    MicroRam ram(8);
    ram.insert(makeThread(1, 100));
    std::shared_ptr<const MicroThread> handle = ram.findShared(1);
    ASSERT_TRUE(handle);
    ram.remove(1);
    // A running microcontext's view stays valid after demotion.
    EXPECT_EQ(handle->spawnPc, 100u);
    EXPECT_EQ(ram.findShared(1), nullptr);
}

TEST(MicroRamTest, ClearEmptiesEverything)
{
    MicroRam ram(8);
    ram.insert(makeThread(1, 100));
    ram.clear();
    EXPECT_EQ(ram.size(), 0u);
    EXPECT_TRUE(ram.routinesAt(100).empty());
}

TEST(MicroRamTest, InsertionStatCounts)
{
    MicroRam ram(8);
    ram.insert(makeThread(1, 1));
    ram.insert(makeThread(2, 2));
    ram.insert(makeThread(1, 3));   // rebuild
    EXPECT_EQ(ram.insertions(), 3u);
}

} // namespace
