/**
 * @file
 * Unit tests for the ProgramBuilder mini-assembler.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/memory_image.hh"

namespace
{

using namespace ssmt::isa;

TEST(BuilderTest, ForwardLabelResolved)
{
    ProgramBuilder b;
    b.beq(R(1), R(0), "target");
    b.nop();
    b.label("target");
    b.halt();
    Program p = b.build("t");
    EXPECT_EQ(p.inst(0).imm, 2);
}

TEST(BuilderTest, BackwardLabelResolved)
{
    ProgramBuilder b;
    b.label("top");
    b.nop();
    b.bne(R(1), R(0), "top");
    b.halt();
    Program p = b.build("t");
    EXPECT_EQ(p.inst(1).imm, 0);
}

TEST(BuilderTest, HereTracksNextPc)
{
    ProgramBuilder b;
    EXPECT_EQ(b.here(), 0u);
    b.nop();
    b.nop();
    EXPECT_EQ(b.here(), 2u);
}

TEST(BuilderTest, LabelPcAfterBinding)
{
    ProgramBuilder b;
    b.nop();
    b.label("mid");
    b.nop();
    EXPECT_EQ(b.labelPc("mid"), 1u);
}

TEST(BuilderTest, JalUsesLinkRegister)
{
    ProgramBuilder b;
    b.jal("fn");
    b.halt();
    b.label("fn");
    b.ret();
    Program p = b.build("t");
    EXPECT_EQ(p.inst(0).op, Opcode::Jal);
    EXPECT_EQ(p.inst(0).rd, kRegLink);
    EXPECT_EQ(p.inst(0).imm, 2);
    EXPECT_EQ(p.inst(2).op, Opcode::Jr);
    EXPECT_EQ(p.inst(2).rs1, kRegLink);
}

TEST(BuilderTest, MvIsAddWithZero)
{
    ProgramBuilder b;
    b.mv(R(1), R(2));
    b.halt();
    Program p = b.build("t");
    EXPECT_EQ(p.inst(0).op, Opcode::Add);
    EXPECT_EQ(p.inst(0).rs2, kRegZero);
}

TEST(BuilderTest, StoreOperandLayout)
{
    ProgramBuilder b;
    b.st(R(5), R(6), 24);
    b.halt();
    Program p = b.build("t");
    EXPECT_EQ(p.inst(0).rs1, R(6));     // base
    EXPECT_EQ(p.inst(0).rs2, R(5));     // data
    EXPECT_EQ(p.inst(0).imm, 24);
    EXPECT_EQ(p.inst(0).rd, kNoReg);
}

TEST(BuilderTest, DataImageLoaded)
{
    ProgramBuilder b;
    b.initWord(0x1000, 42);
    b.initWords(0x2000, {1, 2, 3});
    b.halt();
    Program p = b.build("t");
    MemoryImage mem;
    p.loadData(mem);
    EXPECT_EQ(mem.load(0x1000), 42u);
    EXPECT_EQ(mem.load(0x2000), 1u);
    EXPECT_EQ(mem.load(0x2008), 2u);
    EXPECT_EQ(mem.load(0x2010), 3u);
}

TEST(BuilderTest, DataLabelFixupStoresPc)
{
    ProgramBuilder b;
    b.initWordLabel(0x3000, "handler");
    b.nop();
    b.nop();
    b.label("handler");
    b.halt();
    Program p = b.build("t");
    MemoryImage mem;
    p.loadData(mem);
    EXPECT_EQ(mem.load(0x3000), 2u);
}

TEST(BuilderDeathTest, UnboundLabelIsFatal)
{
    ProgramBuilder b;
    b.j("nowhere");
    EXPECT_EXIT(b.build("t"), testing::ExitedWithCode(1), "nowhere");
}

TEST(BuilderDeathTest, DuplicateLabelPanics)
{
    ProgramBuilder b;
    b.label("x");
    b.nop();
    EXPECT_DEATH(b.label("x"), "duplicate label");
}

TEST(BuilderTest, DisassembleListsAllInstructions)
{
    ProgramBuilder b;
    b.li(R(1), 7);
    b.addi(R(1), R(1), 1);
    b.halt();
    Program p = b.build("t");
    std::string listing = p.disassemble();
    EXPECT_NE(listing.find("ldi"), std::string::npos);
    EXPECT_NE(listing.find("addi"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

} // namespace
