/**
 * @file
 * Tests for the pipeline event trace.
 */

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "cpu/trace.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using cpu::PipelineTrace;
using cpu::TraceEvent;
using cpu::TraceRecord;

TEST(TraceTest, DisabledByDefaultAndRecordsNothing)
{
    PipelineTrace trace;
    EXPECT_FALSE(trace.enabled());
    trace.record(1, TraceEvent::Fetch, 2, 3);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_TRUE(trace.records().empty());
}

TEST(TraceTest, RecordsInOrder)
{
    PipelineTrace trace(8);
    trace.record(10, TraceEvent::Fetch, 1, 100);
    trace.record(11, TraceEvent::Mispredict, 1, 100);
    trace.record(30, TraceEvent::Retire, 1, 100);
    auto records = trace.records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].event, TraceEvent::Fetch);
    EXPECT_EQ(records[1].event, TraceEvent::Mispredict);
    EXPECT_EQ(records[2].cycle, 30u);
}

TEST(TraceTest, RingKeepsNewest)
{
    PipelineTrace trace(4);
    for (uint64_t i = 0; i < 10; i++)
        trace.record(i, TraceEvent::Fetch, i, i);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.totalRecorded(), 10u);
    auto records = trace.records();
    EXPECT_EQ(records.front().cycle, 6u);
    EXPECT_EQ(records.back().cycle, 9u);
}

TEST(TraceTest, ClearResets)
{
    PipelineTrace trace(4);
    trace.record(1, TraceEvent::Spawn);
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.totalRecorded(), 0u);
}

TEST(TraceTest, EveryEventHasAName)
{
    for (int e = 0; e <= static_cast<int>(TraceEvent::BogusRecovery);
         e++) {
        EXPECT_STRNE(traceEventName(static_cast<TraceEvent>(e)), "?");
    }
}

TEST(TraceTest, RecordToStringMentionsEvent)
{
    TraceRecord record{5, TraceEvent::Promote, 0, 0, 0xabcd};
    std::string text = record.toString();
    EXPECT_NE(text.find("promote"), std::string::npos);
    EXPECT_NE(text.find("abcd"), std::string::npos);
}

TEST(TraceTest, CoreEmitsMechanismEvents)
{
    workloads::SyntheticSpec spec;
    spec.takenPercent = {0, 100, 80, 80};
    spec.iters = 100;
    isa::Program prog = workloads::makeSynthetic(spec);
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.traceCapacity = 1 << 16;
    cpu::SsmtCore core(prog, cfg);
    core.run();

    ASSERT_TRUE(core.trace().enabled());
    bool saw_fetch = false, saw_retire = false, saw_spawn = false,
         saw_promote = false;
    uint64_t prev_cycle = 0;
    for (const TraceRecord &record : core.trace().records()) {
        EXPECT_GE(record.cycle, prev_cycle);    // time-ordered
        prev_cycle = record.cycle;
        switch (record.event) {
          case TraceEvent::Fetch: saw_fetch = true; break;
          case TraceEvent::Retire: saw_retire = true; break;
          case TraceEvent::Spawn: saw_spawn = true; break;
          case TraceEvent::Promote: saw_promote = true; break;
          default: break;
        }
    }
    EXPECT_TRUE(saw_fetch);
    EXPECT_TRUE(saw_retire);
    EXPECT_TRUE(saw_spawn || saw_promote);
}

TEST(TraceTest, TracingDoesNotPerturbTiming)
{
    isa::Program prog =
        workloads::makeSynthetic(workloads::SyntheticSpec{});
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    sim::Stats off = sim::runProgram(prog, cfg);
    cfg.traceCapacity = 4096;
    sim::Stats on = sim::runProgram(prog, cfg);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.spawns, on.spawns);
}

} // namespace
