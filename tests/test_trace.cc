/**
 * @file
 * Tests for the pipeline event trace.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "cpu/trace.hh"
#include "sim/json_text.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using cpu::PipelineTrace;
using cpu::TraceEvent;
using cpu::TraceRecord;

TEST(TraceTest, DisabledByDefaultAndRecordsNothing)
{
    PipelineTrace trace;
    EXPECT_FALSE(trace.enabled());
    trace.record(1, TraceEvent::Fetch, 2, 3);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_TRUE(trace.records().empty());
}

TEST(TraceTest, RecordsInOrder)
{
    PipelineTrace trace(8);
    trace.record(10, TraceEvent::Fetch, 1, 100);
    trace.record(11, TraceEvent::Mispredict, 1, 100);
    trace.record(30, TraceEvent::Retire, 1, 100);
    auto records = trace.records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].event, TraceEvent::Fetch);
    EXPECT_EQ(records[1].event, TraceEvent::Mispredict);
    EXPECT_EQ(records[2].cycle, 30u);
}

TEST(TraceTest, RingKeepsNewest)
{
    PipelineTrace trace(4);
    for (uint64_t i = 0; i < 10; i++)
        trace.record(i, TraceEvent::Fetch, i, i);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.totalRecorded(), 10u);
    auto records = trace.records();
    EXPECT_EQ(records.front().cycle, 6u);
    EXPECT_EQ(records.back().cycle, 9u);
}

TEST(TraceTest, ClearResets)
{
    PipelineTrace trace(4);
    trace.record(1, TraceEvent::Spawn);
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.totalRecorded(), 0u);
}

TEST(TraceTest, EveryEventHasAName)
{
    for (int e = 0; e <= static_cast<int>(TraceEvent::BogusRecovery);
         e++) {
        EXPECT_STRNE(traceEventName(static_cast<TraceEvent>(e)), "?");
    }
}

TEST(TraceTest, RecordToStringMentionsEvent)
{
    TraceRecord record{5, TraceEvent::Promote, 0, 0, 0xabcd};
    std::string text = record.toString();
    EXPECT_NE(text.find("promote"), std::string::npos);
    EXPECT_NE(text.find("abcd"), std::string::npos);
}

TEST(TraceTest, CoreEmitsMechanismEvents)
{
    workloads::SyntheticSpec spec;
    spec.takenPercent = {0, 100, 80, 80};
    spec.iters = 100;
    isa::Program prog = workloads::makeSynthetic(spec);
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.traceCapacity = 1 << 16;
    cpu::SsmtCore core(prog, cfg);
    core.run();

    ASSERT_TRUE(core.trace().enabled());
    bool saw_fetch = false, saw_retire = false, saw_spawn = false,
         saw_promote = false;
    uint64_t prev_cycle = 0;
    for (const TraceRecord &record : core.trace().records()) {
        EXPECT_GE(record.cycle, prev_cycle);    // time-ordered
        prev_cycle = record.cycle;
        switch (record.event) {
          case TraceEvent::Fetch: saw_fetch = true; break;
          case TraceEvent::Retire: saw_retire = true; break;
          case TraceEvent::Spawn: saw_spawn = true; break;
          case TraceEvent::Promote: saw_promote = true; break;
          default: break;
        }
    }
    EXPECT_TRUE(saw_fetch);
    EXPECT_TRUE(saw_retire);
    EXPECT_TRUE(saw_spawn || saw_promote);
}

TEST(TraceTest, TracingDoesNotPerturbTiming)
{
    isa::Program prog =
        workloads::makeSynthetic(workloads::SyntheticSpec{});
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    sim::Stats off = sim::runProgram(prog, cfg);
    cfg.traceCapacity = 4096;
    sim::Stats on = sim::runProgram(prog, cfg);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.spawns, on.spawns);
}

isa::Program
tracedProgram()
{
    workloads::SyntheticSpec spec;
    spec.takenPercent = {0, 100, 80, 80};
    spec.iters = 200;
    return workloads::makeSynthetic(spec);
}

TEST(TraceTest, MicrothreadLifecycleEventsCarryContext)
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.traceCapacity = 1 << 16;
    cpu::SsmtCore core(tracedProgram(), cfg);
    core.run();

    bool saw_spawn_ctx = false, saw_end_ctx = false;
    for (const TraceRecord &rec : core.trace().records()) {
        switch (rec.event) {
          case TraceEvent::Spawn:
            EXPECT_NE(rec.ctx, cpu::kNoTraceCtx);
            EXPECT_LT(rec.ctx, cfg.numMicrocontexts);
            saw_spawn_ctx = true;
            break;
          case TraceEvent::ThreadAbort:
          case TraceEvent::ThreadComplete:
            EXPECT_NE(rec.ctx, cpu::kNoTraceCtx);
            saw_end_ctx = true;
            break;
          case TraceEvent::Fetch:
          case TraceEvent::Retire:
            EXPECT_EQ(rec.ctx, cpu::kNoTraceCtx);
            break;
          default:
            break;
        }
    }
    EXPECT_TRUE(saw_spawn_ctx);
    EXPECT_TRUE(saw_end_ctx);
}

TEST(TraceTest, ChromeTraceJsonIsValidAndHasTracks)
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.traceCapacity = 1 << 16;
    cpu::SsmtCore core(tracedProgram(), cfg);
    core.run();

    std::string doc = cpu::chromeTraceJson(core.trace());
    sim::JsonValue root;
    std::string err;
    ASSERT_TRUE(sim::parseJson(doc, root, &err)) << err;

    const sim::JsonValue *other = root.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->str("schema"), "ssmt-chrome-trace-v1");

    const sim::JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_FALSE(events->items.empty());

    bool saw_primary_name = false, saw_ctx_name = false,
         saw_slice = false, saw_instant = false;
    for (const sim::JsonValue &event : events->items) {
        std::string ph = event.str("ph");
        if (ph == "M") {
            const sim::JsonValue *args = event.find("args");
            ASSERT_NE(args, nullptr);
            if (args->str("name") == "primary")
                saw_primary_name = true;
            if (args->str("name").rfind("uctx", 0) == 0)
                saw_ctx_name = true;
        } else if (ph == "X") {
            saw_slice = true;
            EXPECT_GE(event.u64("dur", 0), 1u);
            EXPECT_GE(event.u64("tid", 0), 2u);  // microcontext track
        } else if (ph == "i") {
            saw_instant = true;
        }
    }
    EXPECT_TRUE(saw_primary_name);
    EXPECT_TRUE(saw_ctx_name);
    EXPECT_TRUE(saw_slice);
    EXPECT_TRUE(saw_instant);
}

TEST(TraceTest, JsonlStreamCapturesEveryEvent)
{
    std::string path = testing::TempDir() + "/ssmt_trace_test.jsonl";
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.traceCapacity = 16;         // tiny ring; stream is unbounded
    cfg.tracePath = path;
    uint64_t total = 0;
    {
        // Scoped so the core's destructor closes (and flushes) the
        // stream before the file is read back.
        cpu::SsmtCore core(tracedProgram(), cfg);
        core.run();
        total = core.trace().totalRecorded();
    }
    ASSERT_GT(total, 16u);

    std::FILE *file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    char line[512];
    uint64_t lines = 0;
    while (std::fgets(line, sizeof(line), file)) {
        lines++;
        if (lines <= 5 || lines == total) {
            sim::JsonValue root;
            std::string err;
            EXPECT_TRUE(sim::parseJson(line, root, &err))
                << "line " << lines << ": " << err;
            EXPECT_FALSE(root.str("event").empty());
        }
    }
    std::fclose(file);
    EXPECT_EQ(lines, total);
    std::remove(path.c_str());
}

TEST(TraceTest, JsonLineIncludesContextOnlyWhenSet)
{
    TraceRecord plain{5, TraceEvent::Fetch, 1, 2, 3};
    EXPECT_EQ(plain.toJsonLine().find("\"ctx\""), std::string::npos);
    TraceRecord tagged{5, TraceEvent::Spawn, 1, 2, 3, 4};
    EXPECT_NE(tagged.toJsonLine().find("\"ctx\": 4"),
              std::string::npos);
}

} // namespace
