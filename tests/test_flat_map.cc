/**
 * @file
 * Reference-model sweeps for the hot-path containers: FlatMap /
 * FlatSet against the std::unordered_* they replaced (including
 * erase's backward-shift deletion), FlatRing against std::deque,
 * the per-run Arena's chunk reuse, and the slab-backed
 * CompletionHeap against the payload push_heap/pop_heap vector it
 * replaced — the pop permutation, including same-cycle ties, is
 * architecturally visible through the golden stats, so the
 * equivalence here is exact order, not just multiset equality.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/microram.hh"
#include "isa/inst.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/flat_hash.hh"
#include "sim/snapshot.hh"

namespace
{

using namespace ssmt;

// ---- FlatMap / FlatSet vs std reference ----

TEST(FlatMap, MatchesUnorderedMapUnderRandomChurn)
{
    sim::FlatMap<uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    std::mt19937_64 rng(12345);

    // A small key universe forces long probe chains and exercises
    // the backward-shift on erase; the op count forces rehashes.
    for (int op = 0; op < 20000; op++) {
        uint64_t key = rng() % 512;
        switch (rng() % 3) {
          case 0: {
            uint64_t value = rng();
            flat[key] = value;
            ref[key] = value;
            break;
          }
          case 1:
            EXPECT_EQ(flat.erase(key), ref.erase(key) == 1);
            break;
          default: {
            const uint64_t *found = flat.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(found != nullptr, it != ref.end());
            if (found)
                EXPECT_EQ(*found, it->second);
            break;
          }
        }
    }
    EXPECT_EQ(flat.size(), ref.size());
    for (const auto &[key, value] : ref) {
        const uint64_t *found = flat.find(key);
        ASSERT_NE(found, nullptr) << "missing key " << key;
        EXPECT_EQ(*found, value);
    }
    size_t visited = 0;
    flat.forEach([&](uint64_t key, const uint64_t &value) {
        visited++;
        auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(value, it->second);
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, BackwardShiftKeepsProbeChainsFindable)
{
    // Sequential keys in a small table collide into shared chains;
    // erasing every other key must leave the survivors reachable
    // (backward-shift deletion, no tombstones).
    sim::FlatMap<uint64_t> flat;
    flat.reserve(64);
    for (uint64_t key = 0; key < 64; key++)
        flat[key] = key * 10;
    for (uint64_t key = 0; key < 64; key += 2)
        EXPECT_TRUE(flat.erase(key));
    for (uint64_t key = 0; key < 64; key++) {
        const uint64_t *found = flat.find(key);
        if (key % 2 == 0) {
            EXPECT_EQ(found, nullptr);
        } else {
            ASSERT_NE(found, nullptr) << "lost key " << key;
            EXPECT_EQ(*found, key * 10);
        }
    }
    EXPECT_EQ(flat.size(), 32u);
}

TEST(FlatMap, ErasedSlotsAreReusedWithoutGrowth)
{
    // Backward-shift deletion leaves no tombstones, so steady-state
    // insert/erase churn at a fixed population must never grow the
    // table: the capacity settled after the initial fill is final.
    sim::FlatMap<uint64_t> flat;
    std::mt19937_64 rng(31337);
    for (uint64_t key = 0; key < 96; key++)
        flat[key] = key;
    size_t settled = flat.capacity();
    uint64_t next = 96;
    for (int op = 0; op < 50000; op++) {
        uint64_t victim = rng() % next;
        if (flat.erase(victim)) {
            flat[next] = next;
            next++;
        }
        ASSERT_EQ(flat.capacity(), settled)
            << "table grew at constant size, op " << op;
        ASSERT_EQ(flat.size(), 96u);
    }
}

TEST(FlatMap, GrowthAtHighLoadFactorKeepsEveryEntry)
{
    // No reserve(): every insert drives toward the 7/8 threshold so
    // the table repeatedly rehashes while nearly full. Every entry
    // and the load-factor bound must survive each doubling.
    sim::FlatMap<uint64_t> flat;
    for (uint64_t key = 0; key < 10000; key++) {
        flat[key] = key * 7 + 1;
        ASSERT_LE(flat.size(),
                  flat.capacity() - flat.capacity() / 8)
            << "load factor above 7/8 after key " << key;
    }
    EXPECT_EQ(flat.size(), 10000u);
    for (uint64_t key = 0; key < 10000; key++) {
        const uint64_t *found = flat.find(key);
        ASSERT_NE(found, nullptr) << "lost key " << key;
        EXPECT_EQ(*found, key * 7 + 1);
    }
}

TEST(FlatMap, IterationOrderIsAFunctionOfOperationHistory)
{
    // The serialization sites sort keys, so iteration order is not
    // part of the wire format — but determinism still matters: two
    // tables built by the same operation sequence must iterate
    // identically (the hash mix is a fixed function of the key, with
    // no per-process or per-platform seeding).
    auto build = [](uint64_t salt) {
        sim::FlatMap<uint64_t> flat;
        std::mt19937_64 rng(555);    // same stream for both builds
        for (int op = 0; op < 5000; op++) {
            uint64_t key = rng() % 1024;
            if (rng() % 3 == 0)
                flat.erase(key);
            else
                flat[key] = key + salt;
        }
        return flat;
    };
    sim::FlatMap<uint64_t> a = build(0);
    sim::FlatMap<uint64_t> b = build(0);
    std::vector<uint64_t> order_a, order_b;
    a.forEach([&](uint64_t key, const uint64_t &) {
        order_a.push_back(key);
    });
    b.forEach([&](uint64_t key, const uint64_t &) {
        order_b.push_back(key);
    });
    ASSERT_EQ(order_a.size(), order_b.size());
    EXPECT_EQ(order_a, order_b);

    // And the canonical serialization order (FlatSet::sorted) is the
    // sorted key set, independent of table layout history.
    sim::FlatSet set;
    for (uint64_t key : order_a)
        set.insert(key);
    std::vector<uint64_t> sorted_keys = order_a;
    std::sort(sorted_keys.begin(), sorted_keys.end());
    EXPECT_EQ(set.sorted(), sorted_keys);
}

TEST(FlatMap, TakeFusesFindAndErase)
{
    sim::FlatMap<uint64_t> flat;
    for (uint64_t key = 0; key < 32; key++)
        flat[key] = key * 3;
    uint64_t out = ~0ull;
    EXPECT_FALSE(flat.take(99, out));
    EXPECT_EQ(out, ~0ull);
    ASSERT_TRUE(flat.take(7, out));
    EXPECT_EQ(out, 21u);
    EXPECT_EQ(flat.find(7), nullptr);
    EXPECT_EQ(flat.size(), 31u);
}

TEST(FlatSet, MatchesUnorderedSetUnderRandomChurn)
{
    sim::FlatSet flat;
    std::unordered_set<uint64_t> ref;
    std::mt19937_64 rng(99);
    for (int op = 0; op < 10000; op++) {
        uint64_t key = rng() % 256;
        if (rng() % 2) {
            flat.insert(key);
            ref.insert(key);
        } else {
            EXPECT_EQ(flat.erase(key), ref.erase(key) == 1);
        }
        if (op % 97 == 0)
            EXPECT_EQ(flat.contains(key), ref.count(key) == 1);
    }
    EXPECT_EQ(flat.size(), ref.size());
    for (uint64_t key : ref)
        EXPECT_TRUE(flat.contains(key));
}

// ---- FlatRing vs std::deque ----

TEST(FlatRing, MatchesDequeAcrossWrapArounds)
{
    sim::FlatRing<uint64_t> ring;
    ring.resetCapacity(24);     // rounds up to 32 internally
    std::deque<uint64_t> ref;
    std::mt19937_64 rng(7);
    uint64_t next = 0;
    for (int op = 0; op < 5000; op++) {
        bool push = ref.empty() ||
                    (ref.size() < 24 && rng() % 2 == 0);
        if (push) {
            ring.push_back(next);
            ref.push_back(next);
            next++;
        } else {
            EXPECT_EQ(ring.front(), ref.front());
            ring.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(ring.size(), ref.size());
        if (!ref.empty()) {
            EXPECT_EQ(ring.front(), ref.front());
            size_t probe = rng() % ref.size();
            EXPECT_EQ(ring.at(probe), ref[probe]);
        }
    }
}

TEST(FlatRing, EmplaceBackSlotOverwritesStaleLaps)
{
    struct Two
    {
        uint64_t a = 0;
        uint64_t b = 0;
    };
    sim::FlatRing<Two> ring;
    ring.resetCapacity(4);
    // Several laps so emplace_back hands back recycled slots.
    for (uint64_t lap = 0; lap < 5; lap++) {
        for (uint64_t i = 0; i < 4; i++) {
            Two &slot = ring.emplace_back();
            slot.a = lap * 4 + i;
            slot.b = ~slot.a;
        }
        for (uint64_t i = 0; i < 4; i++) {
            EXPECT_EQ(ring.front().a, lap * 4 + i);
            EXPECT_EQ(ring.front().b, ~(lap * 4 + i));
            ring.pop_front();
        }
    }
}

// ---- Arena ----

TEST(Arena, ResetReusesChunksWithoutNewAllocation)
{
    sim::Arena arena(1024);
    auto fill = [&] {
        for (int i = 0; i < 64; i++) {
            uint64_t *p = arena.allocArray<uint64_t>(32);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                          alignof(uint64_t),
                      0u);
            p[0] = static_cast<uint64_t>(i);
            p[31] = ~static_cast<uint64_t>(i);
        }
    };
    fill();
    size_t chunks_after_first_run = arena.chunkCount();
    EXPECT_GT(chunks_after_first_run, 1u);
    for (int run = 0; run < 10; run++) {
        arena.reset();
        fill();
        // Steady state: the retained chunks absorb every run.
        EXPECT_EQ(arena.chunkCount(), chunks_after_first_run);
    }
}

TEST(Arena, OversizedRequestGetsItsOwnChunk)
{
    sim::Arena arena(1024);
    unsigned char *big = arena.allocArray<unsigned char>(8000);
    ASSERT_NE(big, nullptr);
    big[0] = 1;
    big[7999] = 2;
    EXPECT_EQ(big[0], 1);
    EXPECT_EQ(big[7999], 2);
}

TEST(Arena, ScratchVectorRunsOnTheArena)
{
    sim::Arena arena;
    size_t settled = 0;
    for (int run = 0; run < 3; run++) {
        arena.reset();
        sim::ScratchVector<uint64_t> scratch{
            sim::ArenaAllocator<uint64_t>(arena)};
        for (uint64_t i = 0; i < 1000; i++)
            scratch.push_back(i * 3);
        for (uint64_t i = 0; i < 1000; i++)
            ASSERT_EQ(scratch[i], i * 3);
        if (run == 0)
            settled = arena.chunkCount();
        else
            EXPECT_EQ(arena.chunkCount(), settled);
    }
}

// ---- CompletionHeap vs the payload heap it replaced ----

struct Ev
{
    uint64_t cycle = 0;
    uint64_t tag = 0;

    // The comparator the old payload heap used: cycle only. Tag is
    // deliberately excluded — same-cycle tie order must come from
    // the heap algorithm, not the payload.
    bool operator>(const Ev &other) const
    {
        return cycle > other.cycle;
    }
};

/** The exact structure CompletionHeap replaced. */
struct PayloadHeap
{
    std::vector<Ev> v;

    void
    push(const Ev &e)
    {
        v.push_back(e);
        std::push_heap(v.begin(), v.end(), std::greater<Ev>{});
    }

    bool
    popReady(uint64_t now, Ev &out)
    {
        if (v.empty() || v.front().cycle > now)
            return false;
        out = v.front();
        std::pop_heap(v.begin(), v.end(), std::greater<Ev>{});
        v.pop_back();
        return true;
    }
};

TEST(CompletionHeap, PopPermutationMatchesPayloadHeapExactly)
{
    sim::CompletionHeap<Ev> heap;
    heap.reserve(64);
    PayloadHeap ref;
    std::mt19937_64 rng(4242);
    uint64_t now = 0;
    uint64_t tag = 0;
    for (int round = 0; round < 3000; round++) {
        // Narrow cycle range on purpose: ties are the hard case.
        int pushes = static_cast<int>(rng() % 4);
        for (int i = 0; i < pushes; i++) {
            Ev e{now + 1 + rng() % 6, tag++};
            heap.push(e);
            ref.push(e);
        }
        now++;
        Ev a, b;
        while (true) {
            bool got_a = heap.popReady(now, a);
            bool got_b = ref.popReady(now, b);
            ASSERT_EQ(got_a, got_b);
            if (!got_a)
                break;
            ASSERT_EQ(a.cycle, b.cycle);
            // Exact tie-order equivalence, not just cycle order.
            ASSERT_EQ(a.tag, b.tag);
        }
        ASSERT_EQ(heap.size(), ref.v.size());
        if (!ref.v.empty())
            ASSERT_EQ(heap.nextCycle(), ref.v.front().cycle);
    }
}

TEST(CompletionHeap, VerbatimRoundTripPreservesPopOrder)
{
    sim::CompletionHeap<Ev> heap;
    std::mt19937_64 rng(777);
    uint64_t tag = 0;
    for (int i = 0; i < 200; i++) {
        Ev e{50 + rng() % 10, tag++};
        heap.push(e);
    }
    Ev sink;
    for (int i = 0; i < 80; i++)
        ASSERT_TRUE(heap.popReady(~0ull, sink));

    // Serialize in backing-array order, rebuild verbatim.
    std::vector<Ev> wire;
    heap.forEachInOrder([&](const Ev &e) { wire.push_back(e); });
    sim::CompletionHeap<Ev> rebuilt;
    for (const Ev &e : wire)
        rebuilt.appendVerbatim(e);
    ASSERT_EQ(rebuilt.size(), heap.size());

    // Re-serialization is byte-stable...
    std::vector<Ev> wire2;
    rebuilt.forEachInOrder([&](const Ev &e) { wire2.push_back(e); });
    ASSERT_EQ(wire2.size(), wire.size());
    for (size_t i = 0; i < wire.size(); i++) {
        EXPECT_EQ(wire2[i].cycle, wire[i].cycle);
        EXPECT_EQ(wire2[i].tag, wire[i].tag);
    }
    // ...and the future pop sequence is identical.
    Ev a, b;
    while (true) {
        bool got_a = heap.popReady(~0ull, a);
        bool got_b = rebuilt.popReady(~0ull, b);
        ASSERT_EQ(got_a, got_b);
        if (!got_a)
            break;
        EXPECT_EQ(a.cycle, b.cycle);
        EXPECT_EQ(a.tag, b.tag);
    }
}

// ---- MicroRam snapshot round-trip (FlatMap-backed, pointer and
// ---- denormalized-prefix rebinding in the spawn index) ----

core::MicroThread
makeThread(core::PathId id, uint64_t spawn_pc, uint64_t prefix_pc)
{
    core::MicroThread t;
    t.pathId = id;
    t.spawnPc = spawn_pc;
    core::ExpectedBranch expect;
    expect.pc = prefix_pc;
    expect.target = prefix_pc + 4;
    t.prefix.push_back(expect);
    core::MicroOp op;
    op.inst.op = isa::Opcode::StPCache;
    t.ops.push_back(op);
    return t;
}

TEST(MicroRamSnapshot, RoundTripRebindsSpawnIndex)
{
    core::MicroRam ram(16);
    ram.setProgramSize(600);
    ram.insert(makeThread(1, 100, 90));
    ram.insert(makeThread(2, 100, 91));
    ram.insert(makeThread(3, 500, 92));
    ram.remove(2);

    sim::SnapshotWriter w;
    w.beginObject();
    ram.save(w);
    w.endObject();
    std::string text = w.text();

    core::MicroRam fresh(16);
    fresh.setProgramSize(600);
    sim::SnapshotReader r(text);
    fresh.restore(r);

    // Canonical bytes: re-save is identical.
    sim::SnapshotWriter w2;
    w2.beginObject();
    fresh.save(w2);
    w2.endObject();
    EXPECT_EQ(w2.text(), text);

    // The raw routine pointers and the denormalized prefix head in
    // the spawn index must point at the *restored* store.
    ASSERT_EQ(fresh.routinesAt(100).size(), 1u);
    const core::SpawnTarget &target = fresh.routinesAt(100)[0];
    EXPECT_EQ(target.id, 1u);
    EXPECT_EQ(target.thread.get(), fresh.find(1));
    EXPECT_EQ(target.prefixLen, 1u);
    EXPECT_EQ(target.lastPrefixAddr, 90u * isa::kInstBytes);
    ASSERT_EQ(fresh.routinesAt(500).size(), 1u);
    EXPECT_EQ(fresh.routinesAt(500)[0].thread.get(), fresh.find(3));
    EXPECT_TRUE(fresh.routinesAt(101).empty());
}

} // namespace
