/**
 * @file
 * Tests for the interval time-series metrics layer: sampler
 * semantics, histogram bucketing, end-of-run agreement with the
 * final Stats, determinism across BatchRunner worker counts, the
 * bench-record series block, and the config-knob validation.
 */

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "sim/batch_runner.hh"
#include "sim/bench_json.hh"
#include "sim/golden.hh"
#include "sim/json_text.hh"
#include "sim/metrics.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

isa::Program
testProgram()
{
    workloads::SyntheticSpec spec;
    spec.takenPercent = {0, 100, 80, 80};
    spec.iters = 200;
    return workloads::makeSynthetic(spec);
}

TEST(MetricsTest, DisabledSamplerIsInert)
{
    sim::MachineConfig cfg;
    sim::IntervalSampler sampler(0, cfg);
    EXPECT_FALSE(sampler.enabled());
    EXPECT_FALSE(sampler.due(0));
    EXPECT_FALSE(sampler.due(1000));
    EXPECT_FALSE(sampler.series().enabled());
    EXPECT_TRUE(sampler.series().samples.empty());
    EXPECT_TRUE(sampler.series().histograms.empty());
}

TEST(MetricsTest, DueFiresOnMultiplesOnly)
{
    sim::MachineConfig cfg;
    sim::IntervalSampler sampler(100, cfg);
    EXPECT_TRUE(sampler.enabled());
    EXPECT_TRUE(sampler.due(100));
    EXPECT_TRUE(sampler.due(2500 * 100));
    EXPECT_FALSE(sampler.due(101));
    EXPECT_FALSE(sampler.due(99));
}

TEST(MetricsTest, HistogramBucketsAndMoments)
{
    sim::OccupancyHistogram hist("window", 512, 16);
    EXPECT_EQ(hist.name(), "window");
    EXPECT_EQ(hist.capacity(), 512u);
    EXPECT_EQ(hist.bucketWidth(), 33u);     // ceil(513 / 16)
    ASSERT_EQ(hist.buckets().size(), 16u);

    hist.add(0);
    hist.add(32);       // still bucket 0
    hist.add(33);       // bucket 1
    hist.add(512);      // bucket 15
    hist.add(10000);    // above capacity: clamps into the last bucket
    EXPECT_EQ(hist.buckets()[0], 2u);
    EXPECT_EQ(hist.buckets()[1], 1u);
    EXPECT_EQ(hist.buckets()[15], 2u);
    EXPECT_EQ(hist.samples(), 5u);
    EXPECT_EQ(hist.minValue(), 0u);
    EXPECT_EQ(hist.maxValue(), 10000u);
    EXPECT_EQ(hist.sum(), 0u + 32 + 33 + 512 + 10000);
    EXPECT_DOUBLE_EQ(hist.mean(), 10577.0 / 5.0);
}

TEST(MetricsTest, FinalizeReplacesSameCycleCountersKeepsGauges)
{
    sim::MachineConfig cfg;
    sim::IntervalSampler sampler(10, cfg);

    sim::Stats mid{};
    mid.retiredInsts = 5;
    sim::OccupancyGauges live;
    live.prbEntries = 3;
    sampler.sample(10, mid, live);

    sim::Stats fin{};
    fin.retiredInsts = 6;       // finalizeStats filled more counters
    sim::OccupancyGauges drained;   // end-of-run reclaim zeroed fills
    sampler.finalize(10, fin, drained);

    const sim::MetricsSeries &series = sampler.series();
    ASSERT_EQ(series.samples.size(), 1u);
    EXPECT_EQ(series.samples[0].stats.retiredInsts, 6u);
    // The gauge keeps the in-run observation: finalization reclaims
    // structures and must not rewrite what the hook saw.
    EXPECT_EQ(series.samples[0].gauges.prbEntries, 3u);
}

TEST(MetricsTest, FinalizeAppendsOffIntervalPoint)
{
    sim::MachineConfig cfg;
    sim::IntervalSampler sampler(10, cfg);
    sim::Stats s{};
    sampler.sample(10, s, {});
    sampler.finalize(13, s, {});
    ASSERT_EQ(sampler.series().samples.size(), 2u);
    EXPECT_EQ(sampler.series().samples.back().cycle, 13u);
}

TEST(MetricsTest, FinalSampleEqualsEndOfRunStatsByteForByte)
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.sampleInterval = 500;
    cpu::SsmtCore core(testProgram(), cfg);
    const sim::Stats &final_stats = core.run();

    const sim::MetricsSeries &series = core.series();
    ASSERT_TRUE(series.enabled());
    ASSERT_FALSE(series.samples.empty());
    EXPECT_EQ(series.samples.back().cycle, final_stats.cycles);
    // Every counter, in canonical order, must agree exactly.
    EXPECT_EQ(sim::flattenStats(series.samples.back().stats),
              sim::flattenStats(final_stats));

    // Histograms: one per gauge, all fed once per sample.
    ASSERT_EQ(series.histograms.size(), 5u);
    for (const sim::OccupancyHistogram &hist : series.histograms) {
        EXPECT_EQ(hist.samples(), series.samples.size())
            << hist.name();
    }
    EXPECT_EQ(series.histograms[0].name(), "prb");
    EXPECT_EQ(series.histograms[4].name(), "window");
    EXPECT_EQ(series.histograms[4].capacity(),
              static_cast<uint64_t>(cfg.windowSize));
}

TEST(MetricsTest, SamplingDoesNotPerturbTiming)
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    isa::Program prog = testProgram();

    cpu::SsmtCore off(prog, cfg);
    const sim::Stats off_stats = off.run();
    cfg.sampleInterval = 250;
    cpu::SsmtCore on(prog, cfg);
    const sim::Stats on_stats = on.run();
    EXPECT_EQ(sim::flattenStats(off_stats),
              sim::flattenStats(on_stats));
}

TEST(MetricsTest, SeriesBitIdenticalAcrossWorkerCounts)
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.sampleInterval = 500;
    isa::Program prog = testProgram();

    std::vector<sim::BatchJob> batch;
    for (int i = 0; i < 4; i++)
        batch.push_back({"cell" + std::to_string(i), prog, cfg});

    std::vector<sim::BatchResult> serial =
        sim::BatchRunner(1).run(batch);
    std::vector<sim::BatchResult> parallel =
        sim::BatchRunner(4).run(batch);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i++) {
        ASSERT_TRUE(serial[i].ok());
        ASSERT_TRUE(parallel[i].ok());
        EXPECT_EQ(sim::seriesJson(serial[i].artifacts.series),
                  sim::seriesJson(parallel[i].artifacts.series));
    }
}

TEST(MetricsTest, SeriesJsonParsesWithSchemaAndCounters)
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.sampleInterval = 500;
    cpu::SsmtCore core(testProgram(), cfg);
    const sim::Stats &stats = core.run();

    sim::JsonValue root;
    std::string err;
    ASSERT_TRUE(
        sim::parseJson(sim::seriesJson(core.series()), root, &err))
        << err;
    EXPECT_EQ(root.str("schema"), "ssmt-series-v1");
    EXPECT_EQ(root.u64("interval", 0), 500u);
    const sim::JsonValue *samples = root.find("samples");
    ASSERT_NE(samples, nullptr);
    ASSERT_FALSE(samples->items.empty());
    const sim::JsonValue *counters =
        samples->items.back().find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->u64("cycles", 0), stats.cycles);
    EXPECT_EQ(counters->u64("retiredInsts", 0), stats.retiredInsts);
    const sim::JsonValue *hists = root.find("histograms");
    ASSERT_NE(hists, nullptr);
    EXPECT_EQ(hists->items.size(), 5u);

    // The standalone artifact document parses too and carries the
    // run identification.
    ASSERT_TRUE(sim::parseJson(
        sim::seriesDocumentJson(core.series(), "wl", "cfg"), root,
        &err))
        << err;
    EXPECT_EQ(root.str("schema"), "ssmt-series-v1");
    EXPECT_EQ(root.str("workload"), "wl");
    EXPECT_EQ(root.str("config"), "cfg");
}

TEST(MetricsTest, BenchJsonEmitsVersionedSeriesBlock)
{
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.sampleInterval = 500;
    cpu::SsmtCore core(testProgram(), cfg);
    const sim::Stats &stats = core.run();

    sim::BenchJson bench("metrics_test", 1, true);
    bench.addRun("synthetic", "microthread", 0.5, stats,
                 core.series());
    // A disabled series degrades to the plain record.
    bench.addRun("synthetic", "baseline", 0.5, stats,
                 sim::MetricsSeries{});

    sim::JsonValue root;
    std::string err;
    ASSERT_TRUE(sim::parseJson(bench.str(), root, &err)) << err;
    const sim::JsonValue *runs = root.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 2u);
    const sim::JsonValue *series = runs->items[0].find("series");
    ASSERT_NE(series, nullptr);
    EXPECT_EQ(series->str("schema"), "ssmt-series-v1");
    EXPECT_EQ(series->u64("interval", 0), 500u);
    EXPECT_EQ(runs->items[1].find("series"), nullptr);
}

TEST(MetricsTest, ConfigValidatesObservabilityKnobs)
{
    sim::MachineConfig cfg;
    EXPECT_TRUE(cfg.validate().empty());

    cfg.sampleInterval = 1;     // default maxCycles = 2e9 samples
    EXPECT_FALSE(cfg.validate().empty());
    cfg.maxCycles = 1'000'000;
    EXPECT_TRUE(cfg.validate().empty());

    cfg.tracePath = "artifacts/";
    EXPECT_FALSE(cfg.validate().empty());
    cfg.tracePath = "artifacts/run.jsonl";
    EXPECT_TRUE(cfg.validate().empty());
}

} // namespace
