/**
 * @file
 * Tests for the gshare/PAs hybrid and its selector.
 */

#include <gtest/gtest.h>

#include "bpred/hybrid.hh"

namespace
{

using ssmt::bpred::Hybrid;

TEST(HybridTest, LearnsSimpleBias)
{
    Hybrid h(4096, 4096);
    for (int i = 0; i < 64; i++)
        h.update(9, true);
    EXPECT_TRUE(h.predict(9));
}

TEST(HybridTest, TracksMispredictions)
{
    Hybrid h(4096, 4096);
    for (int i = 0; i < 100; i++)
        h.update(9, true);
    uint64_t before = h.mispredictions();
    h.update(9, false);     // a surprise
    EXPECT_EQ(h.mispredictions(), before + 1);
    EXPECT_EQ(h.predictions(), 101u);
}

TEST(HybridTest, BeatsWorstComponentOnLocalPattern)
{
    // A period-3 local pattern that PAs nails and gshare may not
    // (other branches pollute the global history).
    Hybrid h(16 * 1024, 16 * 1024);
    int correct = 0;
    int total = 0;
    uint64_t noise_pc = 500;
    for (int i = 0; i < 9000; i++) {
        // Noise branch with pseudo-random direction pollutes global
        // history.
        bool noise = ((i * 2654435761u) >> 13) & 1;
        h.update(noise_pc, noise);
        bool dir = (i % 3) == 0;
        if (i > 4000) {
            total++;
            if (h.predict(77) == dir)
                correct++;
        }
        h.update(77, dir);
    }
    EXPECT_GT(correct, total * 90 / 100);
}

TEST(HybridTest, MispredictRateBounded)
{
    Hybrid h;
    for (int i = 0; i < 1000; i++)
        h.update(3, i % 2 == 0);
    EXPECT_GE(h.mispredictRate(), 0.0);
    EXPECT_LE(h.mispredictRate(), 1.0);
}

TEST(HybridTest, RandomStreamNearChance)
{
    // On genuinely random outcomes no predictor should do far better
    // than chance — a sanity check against accidental oracle leaks.
    Hybrid h;
    uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 20000; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.update(11, x & 1);
    }
    EXPECT_GT(h.mispredictRate(), 0.40);
    EXPECT_LT(h.mispredictRate(), 0.60);
}

} // namespace
