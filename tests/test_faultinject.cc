/**
 * @file
 * Tests for the seeded fault-injection subsystem: plan parsing and
 * validation, injector determinism, per-site activity, and the
 * central campaign property — injected speculative-state faults
 * never perturb the architectural instruction stream.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/batch_runner.hh"
#include "sim/faultinject.hh"
#include "sim/golden.hh"
#include "sim/invariants.hh"
#include "sim/machine_config.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using namespace ssmt::sim;

// Synthetic kernel known to promote paths and spawn microthreads:
// two trivially-biased sites plus two 50/50 sites sharing one branch.
workloads::SyntheticSpec
hardSpec()
{
    workloads::SyntheticSpec spec;
    spec.numSites = 4;
    spec.elemsPerSite = 64;
    spec.takenPercent = {0, 100, 50, 50};
    spec.iters = 120;
    return spec;
}

MachineConfig
mtConfig()
{
    MachineConfig cfg;
    cfg.mode = Mode::Microthread;
    return cfg;
}

TEST(FaultSiteTest, NameRoundTrip)
{
    for (FaultSite site : allFaultSites()) {
        const char *name = faultSiteName(site);
        ASSERT_NE(name, nullptr);
        FaultSite parsed = FaultSite::None;
        EXPECT_TRUE(parseFaultSite(name, &parsed)) << name;
        EXPECT_EQ(parsed, site) << name;
    }
    FaultSite parsed = FaultSite::None;
    EXPECT_FALSE(parseFaultSite("bogus-site", &parsed));
    EXPECT_FALSE(parseFaultSite("", &parsed));
}

TEST(FaultPlanTest, ValidateCatchesBadPlans)
{
    FaultPlan plan;    // disabled default
    EXPECT_TRUE(plan.validate().empty());
    EXPECT_FALSE(plan.enabled());

    plan.count = 4;    // count without a site
    EXPECT_FALSE(plan.validate().empty());

    plan.site = FaultSite::PredCacheFlip;
    EXPECT_TRUE(plan.validate().empty());
    EXPECT_TRUE(plan.enabled());

    plan.seed = 0;
    EXPECT_FALSE(plan.validate().empty());
    plan.seed = 7;

    plan.period = 0;
    EXPECT_FALSE(plan.validate().empty());
}

TEST(FaultPlanTest, InvalidPlanRejectedByConfigValidation)
{
    MachineConfig cfg = mtConfig();
    cfg.faults.site = FaultSite::SpawnDrop;
    cfg.faults.count = 2;
    cfg.faults.seed = 0;
    EXPECT_FALSE(cfg.validate().empty());
    EXPECT_THROW(cfg.validateOrThrow(), SimError);
    try {
        cfg.validateOrThrow();
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::ConfigInvalid);
        EXPECT_FALSE(e.recoverable());
    }
}

TEST(FaultInjectorTest, RollStreamIsSeedDeterministic)
{
    FaultPlan plan;
    plan.site = FaultSite::PredCacheFlip;
    plan.count = 100;
    plan.seed = 42;

    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 64; i++) {
        EXPECT_EQ(a.roll(), b.roll()) << "diverged at roll " << i;
    }

    plan.seed = 43;
    FaultInjector c(plan);
    FaultInjector d(plan);
    bool differs = false;
    for (int i = 0; i < 8; i++) {
        differs |= (c.roll() != d.roll());
        (void)d.roll();    // desync on purpose
    }
    EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, FiresAtMostCountTimes)
{
    FaultPlan plan;
    plan.site = FaultSite::PathCacheCorrupt;
    plan.count = 5;
    plan.seed = 9;
    plan.period = 3;

    FaultInjector inj(plan);
    for (uint64_t cycle = 0; cycle < 10000; cycle++) {
        if (inj.shouldFire(cycle)) {
            inj.noteInjected();
        }
    }
    EXPECT_EQ(inj.stats().injected, plan.count);
    EXPECT_EQ(inj.stats().armed, plan.count);
    EXPECT_FALSE(inj.shouldFire(20000));
}

TEST(FaultInjectorTest, StartCycleDelaysFirstFire)
{
    FaultPlan plan;
    plan.site = FaultSite::SpawnDrop;
    plan.count = 1;
    plan.seed = 5;
    plan.startCycle = 500;

    FaultInjector inj(plan);
    for (uint64_t cycle = 0; cycle < 500; cycle++) {
        EXPECT_FALSE(inj.shouldFire(cycle));
    }
    EXPECT_TRUE(inj.shouldFire(500));
}

// Each site, run twice under the same plan, must produce identical
// Stats and FaultStats — the whole fault schedule is a pure function
// of (plan, workload). Each site must also actually inject on this
// microthread-heavy kernel, not just spin on noTarget.
TEST(FaultInjectTest, EverySiteIsDeterministicAndActive)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());

    for (FaultSite site : allFaultSites()) {
        MachineConfig cfg = mtConfig();
        cfg.faults.site = site;
        cfg.faults.count = 8;
        cfg.faults.seed = 0xfeedULL + static_cast<uint64_t>(site);
        cfg.faults.period = 50;

        FaultStats fs1, fs2;
        Stats s1 = runProgramChecked(prog, cfg, "det1", 0, &fs1);
        Stats s2 = runProgramChecked(prog, cfg, "det2", 0, &fs2);

        EXPECT_EQ(std::memcmp(&s1, &s2, sizeof(Stats)), 0)
            << "non-deterministic stats at site "
            << faultSiteName(site);
        EXPECT_EQ(fs1.injected, fs2.injected) << faultSiteName(site);
        EXPECT_EQ(fs1.armed, fs2.armed) << faultSiteName(site);
        EXPECT_EQ(fs1.noTarget, fs2.noTarget) << faultSiteName(site);
        EXPECT_GT(fs1.injected, 0u)
            << "site " << faultSiteName(site)
            << " never found a target on the synthetic kernel";
    }
}

// The tentpole property: faults in speculative state (prediction
// cache, path cache, MicroRAM, spawn machinery) must leave the
// architectural counters byte-identical to the fault-free run, and
// the run must still satisfy every cross-counter invariant.
TEST(FaultInjectTest, ArchitecturalInvarianceCampaign)
{
    const std::vector<std::string> suite = {"comp", "go", "li",
                                            "mcf_2k", "parser_2k"};
    const std::vector<FaultSite> sites = allFaultSites();

    // One clean cell plus one cell per site, per workload.
    std::vector<BatchJob> batch;
    for (const std::string &name : suite) {
        isa::Program prog = workloads::makeWorkload(name);
        BatchJob clean;
        clean.name = name + "/clean";
        clean.program = prog;
        clean.config = goldenMachineConfig();
        batch.push_back(clean);
        for (size_t s = 0; s < sites.size(); s++) {
            BatchJob job = clean;
            job.name = name + "/" + faultSiteName(sites[s]);
            job.config.faults.site = sites[s];
            job.config.faults.count = 10;
            job.config.faults.seed =
                0x9e3779b9ULL * (batch.size() + 1) + s;
            job.config.faults.period = 150;
            batch.push_back(job);
        }
    }

    BatchRunner runner;
    std::vector<BatchResult> results = runner.run(batch);
    ASSERT_EQ(results.size(), batch.size());

    const size_t stride = 1 + sites.size();
    uint64_t total_injected = 0;
    for (size_t w = 0; w < suite.size(); w++) {
        const BatchResult &clean = results[w * stride];
        ASSERT_TRUE(clean.ok()) << clean.error;
        ArchSignature ref = ArchSignature::of(clean.stats);

        for (size_t s = 0; s < sites.size(); s++) {
            const BatchResult &res = results[w * stride + 1 + s];
            ASSERT_TRUE(res.ok())
                << batch[w * stride + 1 + s].name << ": "
                << res.error;
            ArchSignature got = ArchSignature::of(res.stats);
            EXPECT_TRUE(got == ref)
                << batch[w * stride + 1 + s].name << ": "
                << got.diff(ref);
            EXPECT_TRUE(StatsChecker::check(res.stats).empty())
                << batch[w * stride + 1 + s].name;
            total_injected += res.faults.injected;
        }
    }

    // The issue's acceptance bar: a campaign of >= 200 actually
    // injected faults across >= 5 workloads.
    EXPECT_GE(total_injected, 200u);
}

// Counter-test for the checker itself: the invariant layer must
// still flag genuinely inconsistent architectural state, or the
// campaign above proves nothing.
TEST(FaultInjectTest, CheckerStillFlagsCorruptedStats)
{
    isa::Program prog = workloads::makeSynthetic(hardSpec());
    Stats stats = runProgram(prog, mtConfig());
    ASSERT_TRUE(StatsChecker::check(stats).empty());

    Stats corrupt = stats;
    corrupt.spawnAttempts += 1;    // breaks spawn conservation
    EXPECT_FALSE(StatsChecker::check(corrupt).empty());

    corrupt = stats;
    corrupt.predEarly += 1;    // breaks timeliness classification
    EXPECT_FALSE(StatsChecker::check(corrupt).empty());
}

// An ArchSignature mismatch must produce a readable diff naming the
// drifting field.
TEST(ArchSignatureTest, DiffNamesDriftingCounters)
{
    ArchSignature a{};
    ArchSignature b{};
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(a.diff(b).empty());

    b.retiredInsts = 7;
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.diff(b).find("retiredInsts"), std::string::npos);
}

} // namespace
