/**
 * @file
 * Tests for the routine-level library API: validateMicroThread,
 * evalStorePCache, and executeMicroThread (the reference semantics
 * of a microcontext).
 */

#include <gtest/gtest.h>

#include "core/microthread.hh"
#include "core/uthread_builder.hh"
#include "prb_fixture.hh"
#include "vpred/value_predictor.hh"

namespace
{

using namespace ssmt::core;
using namespace ssmt::isa;
using ssmt::test::PrbFiller;
using ssmt::test::pathIdOf;

MicroOp
terminator(Opcode branch_op, RegIndex a, RegIndex b, int64_t target)
{
    MicroOp op;
    op.inst = Inst{Opcode::StPCache, kNoReg, a, b, target};
    op.branchOp = branch_op;
    return op;
}

MicroThread
minimalThread()
{
    MicroThread t;
    t.pathN = 0;
    t.ops.push_back(terminator(Opcode::Bne, 1, 0, 42));
    return t;
}

TEST(ValidateTest, MinimalRoutineValid)
{
    MicroThread t = minimalThread();
    EXPECT_EQ(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, EmptyRoutineInvalid)
{
    MicroThread t;
    EXPECT_NE(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, MissingTerminatorInvalid)
{
    MicroThread t;
    t.pathN = 0;
    MicroOp op;
    op.inst = Inst{Opcode::Add, 1, 2, 3, 0};
    t.ops.push_back(op);
    EXPECT_NE(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, MisplacedTerminatorInvalid)
{
    MicroThread t = minimalThread();
    MicroOp op;
    op.inst = Inst{Opcode::Add, 1, 2, 3, 0};
    t.ops.push_back(op);    // op after StPCache
    EXPECT_NE(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, ControlFlowInsideInvalid)
{
    MicroThread t = minimalThread();
    MicroOp jump;
    jump.inst = Inst{Opcode::J, kNoReg, kNoReg, kNoReg, 5};
    t.ops.insert(t.ops.begin(), jump);
    EXPECT_NE(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, StoreInsideInvalid)
{
    MicroThread t = minimalThread();
    MicroOp store;
    store.inst = Inst{Opcode::St, kNoReg, 1, 2, 0};
    t.ops.insert(t.ops.begin(), store);
    EXPECT_NE(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, VpInstWithSourcesInvalid)
{
    MicroThread t = minimalThread();
    MicroOp vp;
    vp.inst = Inst{Opcode::VpInst, 1, 2, kNoReg, 0};
    t.ops.insert(t.ops.begin(), vp);
    EXPECT_NE(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, ZeroAheadInvalid)
{
    MicroThread t = minimalThread();
    MicroOp vp;
    vp.inst = Inst{Opcode::VpInst, 1, kNoReg, kNoReg, 0};
    vp.ahead = 0;
    t.ops.insert(t.ops.begin(), vp);
    EXPECT_NE(validateMicroThread(t), nullptr);
}

TEST(ValidateTest, PathCoverageMismatchInvalid)
{
    MicroThread t = minimalThread();
    t.pathN = 3;    // but prefix+expected are empty
    EXPECT_NE(validateMicroThread(t), nullptr);
}

struct CondCase
{
    Opcode op;
    uint64_t a;
    uint64_t b;
    bool taken;
};

class EvalStorePCache : public testing::TestWithParam<CondCase>
{
};

TEST_P(EvalStorePCache, ConditionSemantics)
{
    const CondCase &c = GetParam();
    RegFile regs;
    regs.write(1, c.a);
    regs.write(2, c.b);
    RoutineOutcome out =
        evalStorePCache(terminator(c.op, 1, 2, 99), regs);
    EXPECT_EQ(out.taken, c.taken) << opcodeName(c.op);
    EXPECT_EQ(out.target, 99u);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, EvalStorePCache,
    testing::Values(
        CondCase{Opcode::Beq, 5, 5, true},
        CondCase{Opcode::Beq, 5, 6, false},
        CondCase{Opcode::Bne, 5, 6, true},
        CondCase{Opcode::Blt, static_cast<uint64_t>(-1), 0, true},
        CondCase{Opcode::Bge, 0, static_cast<uint64_t>(-1), true},
        CondCase{Opcode::Bltu, static_cast<uint64_t>(-1), 0, false},
        CondCase{Opcode::Bgeu, static_cast<uint64_t>(-1), 0, true}));

TEST(EvalStorePCacheTest, IndirectTargetIsRegisterValue)
{
    RegFile regs;
    regs.write(3, 777);
    MicroOp op;
    op.inst = Inst{Opcode::StPCache, kNoReg, 3, kNoReg, 0};
    op.branchOp = Opcode::Jr;
    RoutineOutcome out = evalStorePCache(op, regs);
    EXPECT_TRUE(out.taken);
    EXPECT_EQ(out.target, 777u);
}

TEST(ExecuteRoutineTest, MatchesPrimaryExecution)
{
    // Build a real routine from a PRB and replay it over the same
    // live-in state: the outcome must match the recorded branch.
    Prb prb(64);
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 0x500);
    fill.load(11, 2, 1, 0, 0x500, 31);
    fill.alui(12, Opcode::Andi, 3, 2, 1, 1);
    fill.branch(13, Opcode::Bne, 3, 0, 20, true);

    ssmt::vpred::ValuePredictor vp(64), ap(64);
    UthreadBuilder builder;
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());

    RegFile regs;
    MemoryImage mem;
    mem.store(0x500, 31);   // odd -> branch taken
    RoutineOutcome out = executeMicroThread(*thread, regs, mem, {});
    EXPECT_TRUE(out.taken);
    EXPECT_EQ(out.target, 20u);

    mem.store(0x500, 30);   // even -> not taken
    RegFile regs2;
    out = executeMicroThread(*thread, regs2, mem, {});
    EXPECT_FALSE(out.taken);
}

TEST(ExecuteRoutineTest, PrunedOpsReadCapturedPredictions)
{
    MicroThread t;
    t.pathN = 0;
    MicroOp vp;
    vp.inst = Inst{Opcode::VpInst, 4, kNoReg, kNoReg, 0};
    t.ops.push_back(vp);
    t.ops.push_back(terminator(Opcode::Bne, 4, 0, 7));
    ASSERT_EQ(validateMicroThread(t), nullptr);

    RegFile regs;
    MemoryImage mem;
    std::vector<uint64_t> predicted = {123, 0};
    RoutineOutcome out = executeMicroThread(t, regs, mem, predicted);
    EXPECT_TRUE(out.taken);     // r4 = 123 != 0

    predicted[0] = 0;
    RegFile regs2;
    out = executeMicroThread(t, regs2, mem, predicted);
    EXPECT_FALSE(out.taken);
}

TEST(ExecuteRoutineDeathTest, MissingTerminatorPanics)
{
    MicroThread t;
    MicroOp op;
    op.inst = Inst{Opcode::Add, 1, 2, 3, 0};
    t.ops.push_back(op);
    RegFile regs;
    MemoryImage mem;
    EXPECT_DEATH(executeMicroThread(t, regs, mem, {}),
                 "without Store_PCache");
}

} // namespace
