/**
 * @file
 * Tests for the paper's discussed-but-unevaluated extensions:
 * the perfect-prediction bound (introduction), the usefulness
 * throttle (Section 5.3), and compiler-provided difficult-path
 * hints (the compile-time variant of Section 4).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "cpu/ssmt_core.hh"
#include "sim/path_profiler.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

workloads::SyntheticSpec
kernelSpec()
{
    workloads::SyntheticSpec spec;
    spec.numSites = 4;
    spec.elemsPerSite = 64;
    spec.takenPercent = {0, 100, 80, 80};
    spec.iters = 120;
    return spec;
}

TEST(OracleAllTest, RemovesEveryMispredict)
{
    isa::Program prog = workloads::makeSynthetic(kernelSpec());
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::OracleAllBranches;
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_EQ(stats.usedMispredicts, 0u);
    EXPECT_GT(stats.oracleOverrides, 0u);
}

TEST(OracleAllTest, UpperBoundsDifficultPathOracle)
{
    isa::Program prog = workloads::makeWorkload("go");
    sim::MachineConfig cfg;
    sim::Stats base = sim::runProgram(prog, cfg);
    cfg.mode = sim::Mode::OracleDifficultPath;
    sim::Stats path_oracle = sim::runProgram(prog, cfg);
    cfg.mode = sim::Mode::OracleAllBranches;
    sim::Stats all_oracle = sim::runProgram(prog, cfg);
    EXPECT_GE(sim::speedup(all_oracle, base),
              sim::speedup(path_oracle, base) - 1e-9);
    EXPECT_GT(sim::speedup(all_oracle, base), 1.2);
}

TEST(OracleAllTest, IntroClaimShapeOnMispredictBoundWork)
{
    // The paper's opening: a 16-wide machine at ~95% accuracy can
    // roughly double by eliminating remaining mispredictions. Our
    // branchy proxies show substantial headroom (the exact factor
    // depends on the workload mix).
    isa::Program prog = workloads::makeWorkload("twolf_2k");
    sim::MachineConfig cfg;
    sim::Stats base = sim::runProgram(prog, cfg);
    cfg.mode = sim::Mode::OracleAllBranches;
    sim::Stats oracle = sim::runProgram(prog, cfg);
    EXPECT_GT(sim::speedup(oracle, base), 1.5);
}

TEST(ThrottleTest, SuppressesUselessRoutines)
{
    // 50/50 sites deviate paths constantly, so spawned microthreads
    // rarely deliver. Left alone such paths never even promote (they
    // recur too rarely); compiler hints force them in, and the
    // throttle must then weed them back out.
    workloads::SyntheticSpec spec = kernelSpec();
    spec.takenPercent = {50, 50, 50, 50};
    isa::Program prog = workloads::makeSynthetic(spec);
    sim::PathProfiler profiler({10});
    profiler.profile(prog, 5'000'000);

    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.staticDifficultHints = profiler.difficultPathIds(10, 0.20);
    cfg.throttleEnabled = true;
    cfg.throttleMinUseful = 0.10;
    cfg.throttleWindow = 16;
    sim::Stats stats = sim::runProgram(prog, cfg);
    ASSERT_GT(stats.spawns, 0u);
    EXPECT_GT(stats.throttleDemotions, 0u);
}

TEST(ThrottleTest, LeavesUsefulRoutinesAlone)
{
    isa::Program prog = workloads::makeSynthetic(kernelSpec());
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    sim::Stats plain = sim::runProgram(prog, cfg);
    cfg.throttleEnabled = true;
    cfg.throttleMinUseful = 0.005;      // only punish near-zero yield
    sim::Stats throttled = sim::runProgram(prog, cfg);
    // Throttling must not meaningfully reduce delivered predictions.
    EXPECT_GE(throttled.predEarly + throttled.predLate,
              (plain.predEarly + plain.predLate) / 2);
}

TEST(ThrottleTest, ReducesSpawnTrafficOnHopelessKernel)
{
    workloads::SyntheticSpec spec = kernelSpec();
    spec.takenPercent = {50, 50, 50, 50};
    isa::Program prog = workloads::makeSynthetic(spec);
    sim::PathProfiler profiler({10});
    profiler.profile(prog, 5'000'000);
    auto hints = profiler.difficultPathIds(10, 0.20);

    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.staticDifficultHints = hints;
    sim::Stats plain = sim::runProgram(prog, cfg);
    cfg.throttleEnabled = true;
    cfg.throttleMinUseful = 0.10;
    cfg.throttleWindow = 16;
    sim::Stats throttled = sim::runProgram(prog, cfg);
    EXPECT_LT(throttled.spawns, plain.spawns);
}

TEST(ThrottleTest, OffByDefault)
{
    sim::MachineConfig cfg;
    EXPECT_FALSE(cfg.throttleEnabled);
    isa::Program prog = workloads::makeSynthetic(kernelSpec());
    cfg.mode = sim::Mode::Microthread;
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_EQ(stats.throttleDemotions, 0u);
}

TEST(HintTest, ProfilerProducesRankedHints)
{
    isa::Program prog = workloads::makeSynthetic(kernelSpec());
    sim::PathProfiler profiler({10});
    profiler.profile(prog, 5'000'000);
    auto hints = profiler.difficultPathIds(10, 0.10);
    EXPECT_EQ(hints.size(), profiler.difficultPaths(10, 0.10));
    EXPECT_GT(hints.size(), 0u);
}

TEST(HintTest, HintsPromoteWithoutTrainingInterval)
{
    isa::Program prog = workloads::makeSynthetic(kernelSpec());
    sim::PathProfiler profiler({10});
    profiler.profile(prog, 5'000'000);

    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.staticDifficultHints = profiler.difficultPathIds(10, 0.10);
    sim::Stats hinted = sim::runProgram(prog, cfg);
    EXPECT_GT(hinted.hintPromotions, 0u);

    sim::MachineConfig plain_cfg;
    plain_cfg.mode = sim::Mode::Microthread;
    sim::Stats dynamic = sim::runProgram(prog, plain_cfg);
    // Hints ramp the mechanism faster, so at least as many routines
    // get built over this short run.
    EXPECT_GE(hinted.promotionsCompleted,
              dynamic.promotionsCompleted);
}

TEST(HintTest, HintedRunStaysArchitecturallyIdentical)
{
    isa::Program prog = workloads::makeSynthetic(kernelSpec());
    sim::PathProfiler profiler({10});
    profiler.profile(prog, 5'000'000);

    sim::MachineConfig base_cfg;
    cpu::SsmtCore base(prog, base_cfg);
    base.run();

    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.staticDifficultHints = profiler.difficultPathIds(10, 0.05);
    cpu::SsmtCore hinted(prog, cfg);
    hinted.run();

    for (int r = 0; r < isa::kNumRegs; r++) {
        ASSERT_EQ(
            hinted.archRegs().read(static_cast<isa::RegIndex>(r)),
            base.archRegs().read(static_cast<isa::RegIndex>(r)));
    }
}

TEST(HintTest, SaveLoadRoundTrip)
{
    std::vector<core::PathId> hints = {0x1234, 0xdeadbeefcafe,
                                       0xffffffffffffffffull, 0};
    std::string path = testing::TempDir() + "/ssmt_hints_test.txt";
    ASSERT_TRUE(sim::PathProfiler::saveHints(path, hints));
    auto loaded = sim::PathProfiler::loadHints(path);
    EXPECT_EQ(loaded, hints);
    std::remove(path.c_str());
}

TEST(HintTest, LoadMissingFileIsEmpty)
{
    auto loaded =
        sim::PathProfiler::loadHints("/nonexistent/nowhere.hints");
    EXPECT_TRUE(loaded.empty());
}

TEST(HintTest, SaveToUnwritablePathFails)
{
    EXPECT_FALSE(sim::PathProfiler::saveHints(
        "/nonexistent_dir/x.hints", {}));
}

TEST(HintTest, BogusHintsAreHarmless)
{
    isa::Program prog = workloads::makeSynthetic(kernelSpec());
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.staticDifficultHints = {0xdead, 0xbeef, 0x1234};
    sim::Stats stats = sim::runProgram(prog, cfg);
    // Nonexistent paths never retire a matching branch, so the
    // hints simply never fire.
    EXPECT_EQ(stats.hintPromotions, 0u);
    EXPECT_GT(stats.ipc(), 0.0);
}

} // namespace
