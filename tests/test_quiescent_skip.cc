/**
 * @file
 * Perf-identity suite for event-driven quiescent-cycle skipping
 * (SsmtCore::fastForward): for every workload under every mechanism
 * mode, a run that skips quiescent cycles must be *byte-identical*
 * to a tick-by-tick run on every observable artifact —
 *
 *   - the golden stats document (ssmt-golden-v1),
 *   - the interval time-series (ssmt-series-v1), whose due points
 *     the skipper must land on exactly,
 *   - a machine checkpoint captured at a fixed mid-run cycle
 *     (ssmt-snapshot-v1 component serialization), which also round
 *     trips: resuming from it finishes with the tick-by-tick stats.
 *
 * This is the contract that lets the cycle loop get faster without
 * the goldens ever being re-blessed; the suite carries the
 * `perf-identity` ctest label so CI can name it (tier-1 runs it via
 * discovery, the sanitizer preset runs the microthread sweep).
 */

#include <gtest/gtest.h>

#include <string>

#include "cpu/ssmt_core.hh"
#include "sim/golden.hh"
#include "sim/metrics.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

/** Mid-run checkpoint cycle: late enough that microthreads are in
 *  flight under the mechanism modes, early enough that every
 *  workload is still running. Runs that finish sooner simply skip
 *  the snapshot leg (consistently in both runs). */
constexpr uint64_t kSnapCycle = 1500;

std::string
coreSnapshotText(const cpu::SsmtCore &core)
{
    sim::SnapshotWriter w;
    w.beginObject();
    core.save(w);
    w.endObject();
    return w.text();
}

std::string
goldenText(const std::string &workload, const sim::Stats &stats)
{
    return sim::goldenJson(
        sim::GoldenRun{workload, sim::kGoldenConfigName, stats});
}

struct RunCapture
{
    std::string golden;
    std::string series;
    std::string snapshot;   ///< empty when the run ended early
};

/** Drive @p core with the external tick loop, optionally calling
 *  fastForward between ticks, capturing a checkpoint at kSnapCycle. */
RunCapture
driveRun(cpu::SsmtCore &core, const sim::MachineConfig &cfg,
         const std::string &workload, bool skip_quiescent)
{
    RunCapture cap;
    while (!core.done() && core.cycle() < cfg.maxCycles &&
           core.retiredInsts() < cfg.maxInsts) {
        if (skip_quiescent) {
            // Never skip past the checkpoint cycle: the capture
            // below must observe it exactly (the same arming logic
            // sim_runner uses for mid-run checkpoints).
            bool armed = core.cycle() < kSnapCycle;
            core.fastForward(armed ? kSnapCycle : cfg.maxCycles);
        }
        core.tick();
        if (core.cycle() == kSnapCycle)
            cap.snapshot = coreSnapshotText(core);
    }
    cap.golden = goldenText(workload, core.finish());
    cap.series = sim::seriesJson(core.series());
    return cap;
}

void
expectSkipIdentity(sim::Mode mode)
{
    for (const std::string &name : workloads::workloadNames()) {
        SCOPED_TRACE(name);
        isa::Program prog = workloads::makeWorkload(name);
        sim::MachineConfig cfg = sim::goldenMachineConfig();
        cfg.mode = mode;
        // Sampling on, at an interval that does not divide
        // kSnapCycle: skip targets must respect due points that are
        // unrelated to the checkpoint arming.
        cfg.sampleInterval = 700;

        cpu::SsmtCore plain(prog, cfg);
        RunCapture tick_by_tick = driveRun(plain, cfg, name, false);

        cpu::SsmtCore skipping(prog, cfg);
        RunCapture skipped = driveRun(skipping, cfg, name, true);

        // Byte-identity of every observable artifact.
        EXPECT_EQ(skipped.golden, tick_by_tick.golden);
        EXPECT_EQ(skipped.series, tick_by_tick.series);
        ASSERT_EQ(skipped.snapshot, tick_by_tick.snapshot);

        // Checkpoint round trip: resume the skipping run's snapshot
        // into a fresh core, finish (with skipping), and land on the
        // tick-by-tick stats.
        if (!skipped.snapshot.empty()) {
            cpu::SsmtCore resumed(prog, cfg);
            sim::SnapshotReader r(skipped.snapshot);
            resumed.restore(r);
            EXPECT_EQ(resumed.cycle(), kSnapCycle);
            while (!resumed.done() &&
                   resumed.cycle() < cfg.maxCycles &&
                   resumed.retiredInsts() < cfg.maxInsts) {
                resumed.fastForward(cfg.maxCycles);
                resumed.tick();
            }
            EXPECT_EQ(goldenText(name, resumed.finish()),
                      tick_by_tick.golden);
        }
    }
}

TEST(QuiescentSkip, BaselineMode)
{
    expectSkipIdentity(sim::Mode::Baseline);
}

TEST(QuiescentSkip, OracleDifficultPathMode)
{
    expectSkipIdentity(sim::Mode::OracleDifficultPath);
}

TEST(QuiescentSkip, MicrothreadMode)
{
    expectSkipIdentity(sim::Mode::Microthread);
}

TEST(QuiescentSkip, MicrothreadNoPredictionsMode)
{
    expectSkipIdentity(sim::Mode::MicrothreadNoPredictions);
}

TEST(QuiescentSkip, RunEntryPointSkipsAndMatchesExternalLoop)
{
    // SsmtCore::run() fast-forwards internally; the external
    // tick-by-tick loop must land on the same stats document. This
    // is the equivalence sim_runner's two drivers rest on.
    isa::Program prog = workloads::makeWorkload("mcf_2k");
    sim::MachineConfig cfg = sim::goldenMachineConfig();
    cfg.sampleInterval = 700;

    cpu::SsmtCore internal(prog, cfg);
    internal.run();
    std::string internal_golden =
        goldenText("mcf_2k", internal.stats());

    cpu::SsmtCore external(prog, cfg);
    RunCapture cap = driveRun(external, cfg, "mcf_2k", false);
    EXPECT_EQ(internal_golden, cap.golden);
    EXPECT_EQ(sim::seriesJson(internal.series()), cap.series);
}

} // namespace
