/**
 * @file
 * Timing-core tests: architectural correctness (co-simulation with
 * the functional executor), IPC bounds, misprediction penalties,
 * window and I-cache behaviour.
 */

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;
using namespace ssmt::isa;

Program
straightLine(int n)
{
    ProgramBuilder b;
    b.li(R(1), 0);
    for (int i = 0; i < n; i++)
        b.addi(R(2), R(1), i);      // independent ops
    b.halt();
    return b.build("straight");
}

TEST(PipelineTest, ArchStateMatchesFunctionalExecutor)
{
    // Co-simulation: the timing core must compute exactly the same
    // architectural state as the plain functional executor.
    Program prog =
        workloads::makeSynthetic(workloads::SyntheticSpec{});
    RegFile ref_regs;
    MemoryImage ref_mem;
    prog.loadData(ref_mem);
    run(prog, ref_regs, ref_mem, 100'000'000);

    sim::MachineConfig cfg;
    cpu::SsmtCore core(prog, cfg);
    core.run();
    for (int r = 0; r < kNumRegs; r++) {
        EXPECT_EQ(core.archRegs().read(static_cast<RegIndex>(r)),
                  ref_regs.read(static_cast<RegIndex>(r)))
            << "r" << r;
    }
}

TEST(PipelineTest, RetiredCountMatchesFunctionalCount)
{
    Program prog =
        workloads::makeSynthetic(workloads::SyntheticSpec{});
    RegFile regs;
    MemoryImage mem;
    prog.loadData(mem);
    uint64_t functional = run(prog, regs, mem, 100'000'000);

    sim::MachineConfig cfg;
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_EQ(stats.retiredInsts, functional);
}

TEST(PipelineTest, IpcBoundedByFetchWidth)
{
    // A warm loop of independent ops flows wide.
    ProgramBuilder b;
    b.li(R(20), 500);
    b.label("top");
    for (int i = 0; i < 32; i++)
        b.addi(R(2), R(1), i);
    b.addi(R(20), R(20), -1);
    b.bne(R(20), R(0), "top");
    b.halt();
    sim::MachineConfig cfg;
    sim::Stats stats = sim::runProgram(b.build("wide"), cfg);
    EXPECT_LE(stats.ipc(), cfg.fetchWidth);
    EXPECT_GT(stats.ipc(), 4.0);
}

TEST(PipelineTest, DependentChainSerializes)
{
    ProgramBuilder b;
    b.li(R(1), 0);
    b.li(R(20), 500);
    b.label("top");
    for (int i = 0; i < 32; i++)
        b.addi(R(1), R(1), 1);      // serial dependency
    b.addi(R(20), R(20), -1);
    b.bne(R(20), R(0), "top");
    b.halt();
    sim::MachineConfig cfg;
    sim::Stats stats = sim::runProgram(b.build("chain"), cfg);
    // One-per-cycle dataflow limit (plus loop overhead and fill).
    EXPECT_LE(stats.ipc(), 1.4);
}

TEST(PipelineTest, DivChainSlowerThanAddChain)
{
    auto chain = [](Opcode op) {
        ProgramBuilder b;
        b.li(R(1), 1 << 20);
        b.li(R(2), 3);
        b.li(R(20), 100);
        b.label("top");
        for (int i = 0; i < 32; i++)
            b.raw(Inst{op, 1, 1, 2, 0});
        b.addi(R(20), R(20), -1);
        b.bne(R(20), R(0), "top");
        b.halt();
        return b.build("c");
    };
    sim::MachineConfig cfg;
    sim::Stats add_stats = sim::runProgram(chain(Opcode::Add), cfg);
    sim::Stats div_stats = sim::runProgram(chain(Opcode::Div), cfg);
    // The serial div chain runs ~12x slower once the I-cache warms.
    EXPECT_GT(div_stats.cycles, add_stats.cycles * 5);
}

TEST(PipelineTest, MispredictPenaltyVisible)
{
    // A branch whose direction is pseudo-random (data-driven LCG)
    // against the same loop with an always-taken branch.
    auto loop = [](bool random) {
        ProgramBuilder b;
        b.li(R(1), 12345);
        b.li(R(20), 4000);
        b.label("top");
        if (random) {
            // x = x*6364136223846793005 + 1442695040888963407
            b.li(R(2), 0x5851f42d4c957f2dll);
            b.mul(R(1), R(1), R(2));
            b.li(R(3), 0x14057b7ef767814fll);
            b.add(R(1), R(1), R(3));
            b.srli(R(4), R(1), 40);
            b.andi(R(4), R(4), 1);
        } else {
            b.li(R(4), 1);
        }
        b.beq(R(4), R(0), "skip");
        b.nop();
        b.label("skip");
        b.addi(R(20), R(20), -1);
        b.bne(R(20), R(0), "top");
        b.halt();
        return b.build(random ? "rand" : "biased");
    };
    sim::MachineConfig cfg;
    sim::Stats biased = sim::runProgram(loop(false), cfg);
    sim::Stats random = sim::runProgram(loop(true), cfg);
    EXPECT_GT(random.usedMispredictRate(), 0.1);
    EXPECT_LT(biased.usedMispredictRate(), 0.02);
    // Each mispredict costs at least the 20-cycle redirect.
    uint64_t extra = random.cycles > biased.cycles
                         ? random.cycles - biased.cycles
                         : 0;
    EXPECT_GT(extra, random.usedMispredicts * 15);
}

TEST(PipelineTest, ColdICacheStallsFetch)
{
    // A program much larger than one I-cache line shows cold fetch
    // misses as bubbles.
    sim::MachineConfig cfg;
    sim::Stats stats = sim::runProgram(straightLine(3000), cfg);
    EXPECT_GT(stats.fetchBubbleCycles, 0u);
}

TEST(PipelineTest, DramBoundLoopIsSlow)
{
    // Pointer-stride loop touching 8MB: every load misses.
    ProgramBuilder b;
    b.li(R(1), 0x1000000);
    b.li(R(20), 2000);
    b.label("top");
    b.ld(R(2), R(1), 0);
    b.add(R(3), R(3), R(2));
    b.addi(R(1), R(1), 4096);   // new page, new line
    b.addi(R(20), R(20), -1);
    b.bne(R(20), R(0), "top");
    b.halt();
    sim::MachineConfig cfg;
    sim::Stats stats = sim::runProgram(b.build("dram"), cfg);
    // Not latency-bound per load (they are independent), but misses
    // must show up in the cache stats.
    EXPECT_GT(stats.l2Misses, 1900u);
}

TEST(PipelineTest, DeterministicAcrossRuns)
{
    Program prog =
        workloads::makeSynthetic(workloads::SyntheticSpec{});
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    sim::Stats a = sim::runProgram(prog, cfg);
    sim::Stats b = sim::runProgram(prog, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredInsts, b.retiredInsts);
    EXPECT_EQ(a.spawns, b.spawns);
    EXPECT_EQ(a.predEarly, b.predEarly);
}

TEST(PipelineTest, MaxInstsStopsRun)
{
    ProgramBuilder b;
    b.label("forever");
    b.j("forever");
    sim::MachineConfig cfg;
    cfg.maxInsts = 5000;
    sim::Stats stats = sim::runProgram(b.build("loop"), cfg);
    EXPECT_GE(stats.retiredInsts, 5000u);
    EXPECT_LT(stats.retiredInsts, 5000u + 64);
}

TEST(PipelineTest, TickGranularityExposed)
{
    Program prog = straightLine(50);
    sim::MachineConfig cfg;
    cpu::SsmtCore core(prog, cfg);
    EXPECT_EQ(core.cycle(), 0u);
    core.tick();
    EXPECT_EQ(core.cycle(), 1u);
    while (!core.done())
        core.tick();
    EXPECT_GT(core.stats().retiredInsts, 50u);
}

TEST(PipelineTest, StoreLoadForwardingThroughMemory)
{
    // A store followed by a dependent load must produce the stored
    // value architecturally.
    ProgramBuilder b;
    b.li(R(1), 0x2000);
    b.li(R(2), 77);
    b.st(R(2), R(1), 0);
    b.ld(R(3), R(1), 0);
    b.halt();
    sim::MachineConfig cfg;
    cpu::SsmtCore core(b.build("fw"), cfg);
    core.run();
    EXPECT_EQ(core.archRegs().read(3), 77u);
}

} // namespace
