/**
 * @file
 * Tests for the Path_Id shift-XOR hash.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/path_id.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt::core;

TEST(PathIdTest, EmptyPathHashesToZero)
{
    EXPECT_EQ(hashPath({}), 0u);
}

TEST(PathIdTest, OrderMatters)
{
    std::vector<uint64_t> abc = {0x40, 0x80, 0xc0};
    std::vector<uint64_t> cba = {0xc0, 0x80, 0x40};
    EXPECT_NE(hashPath(abc), hashPath(cba));
}

TEST(PathIdTest, IncrementalEqualsBatch)
{
    std::vector<uint64_t> path = {4, 8, 16, 120, 4, 8};
    PathId h = 0;
    for (uint64_t addr : path)
        h = hashStep(h, addr);
    EXPECT_EQ(h, hashPath(path));
}

TEST(PathIdTest, DifferentLengthPathsDiffer)
{
    std::vector<uint64_t> shorter = {8, 16};
    std::vector<uint64_t> longer = {8, 16, 0};
    // Appending even a zero address changes the hash (rotation).
    EXPECT_NE(hashPath(shorter), hashPath(longer));
}

TEST(PathIdTest, SingleElementIsIdentityOfAddress)
{
    EXPECT_EQ(hashPath(std::vector<uint64_t>{0x1234}), 0x1234u);
}

TEST(PathIdTest, RandomPathsRarelyCollide)
{
    // 20k random 10-element paths: with a 64-bit hash, any collision
    // at all would indicate a broken mix.
    ssmt::workloads::Rng rng(42);
    std::set<PathId> seen;
    for (int i = 0; i < 20000; i++) {
        std::vector<uint64_t> path;
        for (int j = 0; j < 10; j++)
            path.push_back(rng.nextBelow(1 << 20) * 4);
        seen.insert(hashPath(path));
    }
    EXPECT_EQ(seen.size(), 20000u);
}

TEST(PathIdTest, NeighbouringBranchAddressesSeparate)
{
    // Adjacent branch addresses (common in real code) must hash
    // apart for every position in the path.
    std::vector<uint64_t> base = {400, 800, 1200, 1600};
    PathId h0 = hashPath(base);
    for (size_t i = 0; i < base.size(); i++) {
        auto variant = base;
        variant[i] += 4;
        EXPECT_NE(hashPath(variant), h0) << "position " << i;
    }
}

} // namespace
