/**
 * @file
 * Tests for the ssmt-bench-v1 emitter: the document it produces must
 * parse back (via sim/json_text) with every field intact, string
 * escaping must round-trip, and writeFile must honor the
 * SSMT_BENCH_JSON_DIR redirect/disable contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/bench_json.hh"
#include "sim/json_text.hh"

namespace
{

using namespace ssmt;

sim::Stats
sampleStats()
{
    sim::Stats s;
    s.cycles = 1000;
    s.retiredInsts = 2500;
    s.condBranches = 400;
    s.condHwMispredicts = 40;
    s.indirectBranches = 25;
    s.indirectHwMispredicts = 5;
    s.usedMispredicts = 30;
    s.promotionsRequested = 8;
    s.promotionsCompleted = 7;
    s.demotions = 2;
    s.spawnAttempts = 90;
    s.spawns = 60;
    s.abortsPostSpawn = 10;
    s.microthreadsCompleted = 45;
    s.predEarly = 20;
    s.predLate = 15;
    s.predUseless = 5;
    s.predNeverReached = 3;
    s.microPredCorrect = 30;
    s.microPredWrong = 5;
    s.pcacheWrites = 43;
    s.pcacheLookupHits = 20;
    return s;
}

TEST(BenchJsonTest, EmitParseRoundTrip)
{
    sim::BenchJson doc("roundtrip", 4, true);
    sim::Stats s = sampleStats();
    doc.addRun("mcf_2k", "microthread", 1.25, s);
    doc.addTiming("li", "profiler", 0.5);
    doc.setSuiteWallSeconds(2.75);

    sim::JsonValue parsed;
    std::string err;
    ASSERT_TRUE(sim::parseJson(doc.str(), parsed, &err)) << err;
    ASSERT_EQ(parsed.kind, sim::JsonValue::Kind::Object);

    EXPECT_EQ(parsed.str("schema"), "ssmt-bench-v1");
    EXPECT_EQ(parsed.str("bench"), "roundtrip");
    const sim::JsonValue *quick = parsed.find("quick");
    ASSERT_NE(quick, nullptr);
    EXPECT_EQ(quick->kind, sim::JsonValue::Kind::Bool);
    EXPECT_TRUE(quick->boolean);
    EXPECT_EQ(parsed.u64("jobs", 0), 4u);
    const sim::JsonValue *wall = parsed.find("suiteWallSeconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_NEAR(wall->number, 2.75, 1e-9);
    const sim::JsonValue *job_total = parsed.find("jobSecondsTotal");
    ASSERT_NE(job_total, nullptr);
    EXPECT_NEAR(job_total->number, 1.75, 1e-9);

    const sim::JsonValue *runs = parsed.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->kind, sim::JsonValue::Kind::Array);
    ASSERT_EQ(runs->items.size(), 2u);

    const sim::JsonValue &cell = runs->items[0];
    EXPECT_EQ(cell.str("workload"), "mcf_2k");
    EXPECT_EQ(cell.str("config"), "microthread");
    EXPECT_EQ(cell.u64("cycles", 0), s.cycles);
    EXPECT_EQ(cell.u64("retiredInsts", 0), s.retiredInsts);
    EXPECT_EQ(cell.u64("condBranches", 0), s.condBranches);
    EXPECT_EQ(cell.u64("condHwMispredicts", 0), s.condHwMispredicts);
    EXPECT_EQ(cell.u64("usedMispredicts", 0), s.usedMispredicts);
    EXPECT_EQ(cell.u64("spawnAttempts", 0), s.spawnAttempts);
    EXPECT_EQ(cell.u64("spawns", 0), s.spawns);
    EXPECT_EQ(cell.u64("predEarly", 0), s.predEarly);
    EXPECT_EQ(cell.u64("predLate", 0), s.predLate);
    EXPECT_EQ(cell.u64("pcacheLookupHits", 0), s.pcacheLookupHits);
    const sim::JsonValue *ipc = cell.find("ipc");
    ASSERT_NE(ipc, nullptr);
    EXPECT_NEAR(ipc->number, s.ipc(), 1e-6);

    // The timing-only cell has no simulator counters.
    const sim::JsonValue &timing = runs->items[1];
    EXPECT_EQ(timing.str("workload"), "li");
    EXPECT_EQ(timing.find("cycles"), nullptr);
}

TEST(BenchJsonTest, EmptyDocumentParses)
{
    sim::BenchJson doc("empty", 1, false);
    sim::JsonValue parsed;
    std::string err;
    ASSERT_TRUE(sim::parseJson(doc.str(), parsed, &err)) << err;
    const sim::JsonValue *runs = parsed.find("runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_TRUE(runs->items.empty());
    const sim::JsonValue *quick = parsed.find("quick");
    ASSERT_NE(quick, nullptr);
    EXPECT_FALSE(quick->boolean);
}

TEST(BenchJsonTest, EscapedStringsRoundTrip)
{
    std::string nasty = "a\"b\\c\nd\te\rf";
    nasty += '\x01';                    // control char -> \\u escape
    sim::BenchJson doc(nasty, 1, false);
    doc.addTiming(nasty, "cfg", 0.0);

    sim::JsonValue parsed;
    std::string err;
    ASSERT_TRUE(sim::parseJson(doc.str(), parsed, &err)) << err;
    EXPECT_EQ(parsed.str("bench"), nasty);
    const sim::JsonValue *runs = parsed.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 1u);
    EXPECT_EQ(runs->items[0].str("workload"), nasty);
}

/** RAII guard: set/unset SSMT_BENCH_JSON_DIR, restore on exit. */
class EnvDirGuard
{
  public:
    explicit EnvDirGuard(const char *value)
    {
        const char *old = std::getenv("SSMT_BENCH_JSON_DIR");
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value)
            setenv("SSMT_BENCH_JSON_DIR", value, 1);
        else
            unsetenv("SSMT_BENCH_JSON_DIR");
    }

    ~EnvDirGuard()
    {
        if (had_)
            setenv("SSMT_BENCH_JSON_DIR", saved_.c_str(), 1);
        else
            unsetenv("SSMT_BENCH_JSON_DIR");
    }

  private:
    bool had_;
    std::string saved_;
};

TEST(BenchJsonTest, WriteFileHonorsEnvRedirect)
{
    std::string dir = ::testing::TempDir() + "bench_json_env";
    ASSERT_EQ(0, system(("mkdir -p " + dir).c_str()));
    EnvDirGuard guard(dir.c_str());

    sim::BenchJson doc("envtest", 1, false);
    doc.addRun("go", "baseline", 0.1, sampleStats());
    std::string path = doc.writeFile();
    EXPECT_EQ(path, dir + "/BENCH_envtest.json");

    std::FILE *file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        text.append(buf, got);
    std::fclose(file);
    EXPECT_EQ(text, doc.str());
    std::remove(path.c_str());
}

TEST(BenchJsonTest, WriteFileExplicitDirBeatsEnv)
{
    std::string env_dir = ::testing::TempDir() + "bench_json_envb";
    std::string arg_dir = ::testing::TempDir() + "bench_json_arg";
    ASSERT_EQ(0, system(("mkdir -p " + env_dir).c_str()));
    ASSERT_EQ(0, system(("mkdir -p " + arg_dir).c_str()));
    EnvDirGuard guard(env_dir.c_str());

    sim::BenchJson doc("argtest", 1, false);
    std::string path = doc.writeFile(arg_dir);
    EXPECT_EQ(path, arg_dir + "/BENCH_argtest.json");
    std::remove(path.c_str());
}

TEST(BenchJsonTest, WriteFileDisabledByOffAndDevNull)
{
    for (const char *setting : {"off", "/dev/null"}) {
        SCOPED_TRACE(setting);
        EnvDirGuard guard(setting);
        sim::BenchJson doc("disabled", 1, false);
        EXPECT_EQ(doc.writeFile(), "");
        // The explicit-argument spellings are disabled too.
        EXPECT_EQ(doc.writeFile(setting), "");
    }
}

TEST(BenchJsonTest, WriteFileUnwritableDirFailsCleanly)
{
    EnvDirGuard guard("/nonexistent-ssmt-bench-dir");
    sim::BenchJson doc("unwritable", 1, false);
    EXPECT_EQ(doc.writeFile(), "");
}

} // namespace
