/**
 * @file
 * Tests for the JRS confidence estimator (paper reference [10]).
 */

#include <gtest/gtest.h>

#include "bpred/jrs_confidence.hh"
#include "workloads/workloads.hh"

namespace
{

using ssmt::bpred::JrsConfidence;

TEST(JrsTest, StartsLowConfidence)
{
    JrsConfidence jrs(256, 4, 15);
    EXPECT_FALSE(jrs.highConfidence(10, 0));
    EXPECT_EQ(jrs.count(10, 0), 0);
}

TEST(JrsTest, ConfidenceBuildsWithCorrectStreak)
{
    JrsConfidence jrs(256, 4, 15);
    for (int i = 0; i < 3; i++)
        jrs.update(10, 0, true);
    EXPECT_FALSE(jrs.highConfidence(10, 0));
    jrs.update(10, 0, true);
    EXPECT_TRUE(jrs.highConfidence(10, 0));
}

TEST(JrsTest, MispredictResetsToZero)
{
    JrsConfidence jrs(256, 4, 15);
    for (int i = 0; i < 10; i++)
        jrs.update(10, 0, true);
    ASSERT_TRUE(jrs.highConfidence(10, 0));
    jrs.update(10, 0, false);
    EXPECT_FALSE(jrs.highConfidence(10, 0));
    EXPECT_EQ(jrs.count(10, 0), 0);
}

TEST(JrsTest, CounterSaturates)
{
    JrsConfidence jrs(256, 4, 15);
    for (int i = 0; i < 100; i++)
        jrs.update(10, 0, true);
    EXPECT_EQ(jrs.count(10, 0), 15);
}

TEST(JrsTest, ContextsAreIndependent)
{
    // The point of path-indexed confidence: the same static branch
    // can be high-confidence on one path and low on another.
    JrsConfidence jrs(4096, 4, 15);
    uint64_t easy_path = 0x1111;
    uint64_t hard_path = 0x2222;
    for (int i = 0; i < 16; i++) {
        jrs.update(10, easy_path, true);
        jrs.update(10, hard_path, i % 2 == 0);
    }
    EXPECT_TRUE(jrs.highConfidence(10, easy_path));
    EXPECT_FALSE(jrs.highConfidence(10, hard_path));
}

TEST(JrsTest, PathIndexedBeatsPcIndexedOnPathSkew)
{
    // Synthetic stream: branch 10 is always-correct on path A and a
    // coin flip on path B. Path-indexed confidence separates them;
    // pc-indexed confidence (history = 0) cannot.
    JrsConfidence by_path(4096, 8, 15);
    JrsConfidence by_pc(4096, 8, 15);
    ssmt::workloads::Rng rng(3);
    uint64_t low_conf_misses_path = 0;
    uint64_t misses_at_high_conf_path = 0;
    uint64_t misses_at_high_conf_pc = 0;
    uint64_t total_misses = 0;
    for (int i = 0; i < 50000; i++) {
        bool on_a = rng.chance(50);
        uint64_t path = on_a ? 0xAAAA : 0xBBBB;
        bool correct = on_a ? true : rng.chance(50);
        if (!correct) {
            total_misses++;
            if (by_path.highConfidence(10, path))
                misses_at_high_conf_path++;
            else
                low_conf_misses_path++;
            if (by_pc.highConfidence(10, 0))
                misses_at_high_conf_pc++;
        }
        by_path.update(10, path, correct);
        by_pc.update(10, 0, correct);
    }
    ASSERT_GT(total_misses, 1000u);
    // Path indexing: essentially no misprediction sneaks in as
    // high-confidence (path B never builds an 8-streak often).
    EXPECT_LT(static_cast<double>(misses_at_high_conf_path) /
                  total_misses,
              0.02);
    // pc indexing cannot do better than the path split allows; it
    // must leak at least as many high-confidence misses.
    EXPECT_GE(misses_at_high_conf_pc, misses_at_high_conf_path);
}

TEST(JrsDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(JrsConfidence(1000, 4, 15), "power of two");
    EXPECT_DEATH(JrsConfidence(1024, 20, 15), "threshold");
}

} // namespace
