/**
 * @file
 * Tests for the Post-Retirement Buffer ring.
 */

#include <gtest/gtest.h>

#include "core/prb.hh"
#include "prb_fixture.hh"

namespace
{

using namespace ssmt::core;
using ssmt::test::PrbFiller;

TEST(PrbTest, PositionsOldestToYoungest)
{
    Prb prb(8);
    PrbFiller fill(prb);
    fill.ldi(1, 1, 10);
    fill.ldi(2, 2, 20);
    fill.ldi(3, 3, 30);
    EXPECT_EQ(prb.size(), 3u);
    EXPECT_EQ(prb.at(0).pc, 1u);
    EXPECT_EQ(prb.at(2).pc, 3u);
    EXPECT_EQ(prb.youngest().pc, 3u);
}

TEST(PrbTest, OverflowDropsOldest)
{
    Prb prb(4);
    PrbFiller fill(prb);
    for (uint64_t pc = 1; pc <= 6; pc++)
        fill.ldi(pc, 1, 0);
    EXPECT_EQ(prb.size(), 4u);
    EXPECT_EQ(prb.at(0).pc, 3u);
    EXPECT_EQ(prb.youngest().pc, 6u);
}

TEST(PrbTest, SequenceNumbersPreserved)
{
    Prb prb(8);
    PrbFiller fill(prb, 500);
    fill.ldi(1, 1, 0);
    fill.ldi(2, 2, 0);
    EXPECT_EQ(prb.at(0).seq, 500u);
    EXPECT_EQ(prb.at(1).seq, 501u);
}

TEST(PrbTest, MetadataRoundTrip)
{
    Prb prb(8);
    PrbFiller fill(prb);
    fill.load(7, 3, 4, 16, 0x1010, 99, true, true);
    const PrbEntry &entry = prb.youngest();
    EXPECT_EQ(entry.memAddr, 0x1010u);
    EXPECT_EQ(entry.value, 99u);
    EXPECT_TRUE(entry.vpConfident);
    EXPECT_TRUE(entry.apConfident);
    EXPECT_TRUE(entry.inst.isLoad());
}

TEST(PrbTest, ClearEmpties)
{
    Prb prb(8);
    PrbFiller fill(prb);
    fill.ldi(1, 1, 0);
    prb.clear();
    EXPECT_EQ(prb.size(), 0u);
}

TEST(PrbDeathTest, OutOfRangePositionPanics)
{
    Prb prb(8);
    EXPECT_DEATH(prb.at(0), "out of range");
}

TEST(PrbTest, CapacityMatchesConfig)
{
    Prb prb(512);
    EXPECT_EQ(prb.capacity(), 512u);
    PrbFiller fill(prb);
    for (uint64_t i = 0; i < 600; i++)
        fill.ldi(i, 1, 0);
    EXPECT_EQ(prb.size(), 512u);
    EXPECT_EQ(prb.at(0).pc, 88u);
}

} // namespace
