/**
 * @file
 * Tests for the Table 3 L1I/L1D/L2/DRAM hierarchy latency model.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace
{

using ssmt::memory::Hierarchy;
using ssmt::memory::HierarchyConfig;

TEST(HierarchyTest, ReadLatenciesByLevel)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    // Cold: DRAM.
    EXPECT_EQ(h.read(0x1000),
              cfg.l1Latency + cfg.l2Latency + cfg.dramLatency);
    // Now in L1.
    EXPECT_EQ(h.read(0x1000), cfg.l1Latency);
}

TEST(HierarchyTest, L2HitAfterL1Eviction)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    h.read(0x1000);
    // Thrash the L1 set containing 0x1000: L1D is 2-way with
    // 64KB/2/64B = 512 sets; stride = 512*64 = 32KB.
    h.read(0x1000 + 32 * 1024);
    h.read(0x1000 + 64 * 1024);
    // 0x1000 evicted from L1 but still in the 1MB L2.
    EXPECT_EQ(h.read(0x1000), cfg.l1Latency + cfg.l2Latency);
}

TEST(HierarchyTest, StoresInvalidateL1AndFillL2)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    h.read(0x2000);
    EXPECT_EQ(h.read(0x2000), cfg.l1Latency);
    h.write(0x2000);    // "sent directly to the L2, invalidated in L1"
    EXPECT_EQ(h.read(0x2000), cfg.l1Latency + cfg.l2Latency);
}

TEST(HierarchyTest, StoreToColdLineMakesL2Hit)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    h.write(0x3000);
    EXPECT_EQ(h.read(0x3000), cfg.l1Latency + cfg.l2Latency);
}

TEST(HierarchyTest, FetchUsesSeparateL1I)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    EXPECT_EQ(h.fetch(0x100),
              cfg.l1Latency + cfg.l2Latency + cfg.dramLatency);
    EXPECT_EQ(h.fetch(0x100), cfg.l1Latency);
    // A data read of the same line does not hit in the L1I path but
    // does hit the (unified) L2.
    EXPECT_EQ(h.read(0x100), cfg.l1Latency + cfg.l2Latency);
}

TEST(HierarchyTest, PrefetchEffect)
{
    // The microthread side-effect the paper highlights: a first
    // reader warms the caches for a later reader.
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    int first = h.read(0x9000);
    int second = h.read(0x9000);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, cfg.l1Latency);
}

TEST(HierarchyTest, ResetColdensEverything)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    h.read(0x4000);
    h.reset();
    EXPECT_EQ(h.read(0x4000),
              cfg.l1Latency + cfg.l2Latency + cfg.dramLatency);
}

TEST(HierarchyTest, CustomLatenciesRespected)
{
    HierarchyConfig cfg;
    cfg.l1Latency = 2;
    cfg.l2Latency = 10;
    cfg.dramLatency = 200;
    Hierarchy h(cfg);
    EXPECT_EQ(h.read(0), 212);
    EXPECT_EQ(h.read(0), 2);
}

} // namespace
