/**
 * @file
 * Property tests sweeping machine parameters: the timing model must
 * respond monotonically (or at least sanely) to capacity and latency
 * knobs, and the mechanism must stay architecturally transparent at
 * every configuration point.
 */

#include <gtest/gtest.h>

#include "cpu/ssmt_core.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

isa::Program
kernel()
{
    workloads::SyntheticSpec spec;
    spec.numSites = 4;
    spec.elemsPerSite = 64;
    spec.takenPercent = {0, 100, 80, 80};
    spec.iters = 80;
    return workloads::makeSynthetic(spec);
}

TEST(ConfigSweepTest, RedirectPenaltyMonotone)
{
    isa::Program prog = kernel();
    uint64_t prev = 0;
    for (int penalty : {2, 12, 40}) {
        sim::MachineConfig cfg;
        cfg.redirectPenalty = penalty;
        sim::Stats stats = sim::runProgram(prog, cfg);
        EXPECT_GE(stats.cycles, prev) << "penalty " << penalty;
        prev = stats.cycles;
    }
}

TEST(ConfigSweepTest, WindowSizeMonotone)
{
    isa::Program prog = kernel();
    uint64_t prev = ~0ull;
    for (int window : {32, 128, 512}) {
        sim::MachineConfig cfg;
        cfg.windowSize = window;
        sim::Stats stats = sim::runProgram(prog, cfg);
        EXPECT_LE(stats.cycles, prev) << "window " << window;
        prev = stats.cycles;
    }
}

TEST(ConfigSweepTest, FuCountMonotone)
{
    isa::Program prog = kernel();
    uint64_t prev = ~0ull;
    for (int fus : {1, 4, 16}) {
        sim::MachineConfig cfg;
        cfg.numFUs = fus;
        sim::Stats stats = sim::runProgram(prog, cfg);
        EXPECT_LE(stats.cycles, prev) << "FUs " << fus;
        prev = stats.cycles;
    }
}

TEST(ConfigSweepTest, DramLatencyHurts)
{
    // mcf's pointer sweep is DRAM-bound; slower DRAM, slower run.
    isa::Program prog = workloads::makeWorkload("mcf_2k");
    sim::MachineConfig fast;
    fast.mem.dramLatency = 20;
    sim::MachineConfig slow;
    slow.mem.dramLatency = 300;
    EXPECT_LT(sim::runProgram(prog, fast).cycles,
              sim::runProgram(prog, slow).cycles);
}

TEST(ConfigSweepTest, FetchWidthHelps)
{
    isa::Program prog = kernel();
    sim::MachineConfig narrow;
    narrow.fetchWidth = 2;
    sim::MachineConfig wide;
    wide.fetchWidth = 16;
    EXPECT_LT(sim::runProgram(prog, wide).cycles,
              sim::runProgram(prog, narrow).cycles);
}

class PathNSweep : public testing::TestWithParam<int>
{
};

TEST_P(PathNSweep, MechanismTransparentAtEveryN)
{
    isa::Program prog = kernel();
    sim::MachineConfig base_cfg;
    cpu::SsmtCore base(prog, base_cfg);
    base.run();

    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.pathN = GetParam();
    cfg.builder.pruningEnabled = true;
    cpu::SsmtCore core(prog, cfg);
    core.run();

    EXPECT_EQ(core.stats().retiredInsts, base.stats().retiredInsts);
    for (int r = 0; r < isa::kNumRegs; r++) {
        ASSERT_EQ(core.archRegs().read(static_cast<isa::RegIndex>(r)),
                  base.archRegs().read(static_cast<isa::RegIndex>(r)))
            << "n=" << GetParam() << " r" << r;
    }
}

TEST_P(PathNSweep, SeqDeltaMatchingHoldsAtEveryN)
{
    // Every consumed early prediction relies on exact
    // (Path_Id, Seq_Num) matching; if the spawn-to-branch
    // separations were wrong, predictions would all go stale
    // (never-reached) instead of being consumed.
    isa::Program prog = kernel();
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.pathN = GetParam();
    sim::Stats stats = sim::runProgram(prog, cfg);
    if (stats.spawns > 500) {
        EXPECT_GT(stats.predEarly + stats.predLate, 0u)
            << "n=" << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Ns, PathNSweep,
                         testing::Values(1, 2, 4, 8, 10, 16));

TEST(ConfigSweepTest, TinyPredictionCacheStillCorrect)
{
    isa::Program prog = kernel();
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.predictionCacheEntries = 2;
    sim::MachineConfig base_cfg;
    cpu::SsmtCore base(prog, base_cfg);
    base.run();
    cpu::SsmtCore core(prog, cfg);
    core.run();
    EXPECT_EQ(core.stats().retiredInsts, base.stats().retiredInsts);
}

TEST(ConfigSweepTest, McbBoundsRoutineSize)
{
    isa::Program prog = kernel();
    for (int mcb : {2, 8, 64}) {
        sim::MachineConfig cfg;
        cfg.mode = sim::Mode::Microthread;
        cfg.builder.mcbEntries = mcb;
        sim::Stats stats = sim::runProgram(prog, cfg);
        if (stats.build.built > 0) {
            EXPECT_LE(stats.build.avgRoutineSize(),
                      static_cast<double>(mcb) + 1.0)
                << "mcb " << mcb;
        }
    }
}

TEST(ConfigSweepTest, SmallPathCacheStillFunctions)
{
    isa::Program prog = kernel();
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.pathCacheEntries = 64;
    cfg.pathCacheAssoc = 4;
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_GT(stats.ipc(), 0.0);
}

TEST(ConfigSweepTest, PrbSmallerThanScopeBlocksBuilds)
{
    isa::Program prog = kernel();
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    cfg.pathN = 16;
    cfg.prbEntries = 16;    // cannot hold a 16-branch scope
    sim::Stats stats = sim::runProgram(prog, cfg);
    EXPECT_EQ(stats.build.built, 0u);
    EXPECT_GT(stats.build.failScopeNotInPrb, 0u);
}

TEST(ConfigSweepTest, ZeroLatencyHierarchyBeatsDefault)
{
    isa::Program prog = workloads::makeWorkload("comp");
    sim::MachineConfig fast;
    fast.mem.l1Latency = 1;
    fast.mem.l2Latency = 1;
    fast.mem.dramLatency = 1;
    sim::MachineConfig normal;
    EXPECT_LT(sim::runProgram(prog, fast).cycles,
              sim::runProgram(prog, normal).cycles);
}

TEST(ConfigSweepDeathTest, InvalidNPanics)
{
    isa::Program prog = kernel();
    sim::MachineConfig cfg;
    cfg.pathN = 17;
    EXPECT_DEATH(cpu::SsmtCore(prog, cfg), "path n");
}

} // namespace
