/**
 * @file
 * Dedicated CompletionHeap unit tests: the now-boundary on
 * popReady/peekReady, same-cycle tie stability as a pure function of
 * push history, slab-slot recycling under steady-state churn, and
 * clear()-then-reuse equivalence with a fresh heap. (test_flat_map.cc
 * holds the reference-model sweep against the payload heap this
 * replaced; these tests pin the contract edges directly.)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

namespace
{

using namespace ssmt;

struct Event
{
    uint64_t cycle = 0;
    uint32_t tag = 0;
};

/** Drain everything ready at @p now, in pop order. */
std::vector<Event>
drain(sim::CompletionHeap<Event> &heap, uint64_t now)
{
    std::vector<Event> out;
    Event e;
    while (heap.popReady(now, e))
        out.push_back(e);
    return out;
}

TEST(CompletionHeapTest, PopReadyRespectsTheNowBoundary)
{
    sim::CompletionHeap<Event> heap;
    heap.push({10, 1});
    heap.push({11, 2});

    Event e;
    EXPECT_FALSE(heap.popReady(9, e));      // nothing due yet
    EXPECT_EQ(heap.size(), 2u);

    ASSERT_TRUE(heap.popReady(10, e));      // due exactly at now
    EXPECT_EQ(e.tag, 1u);
    EXPECT_FALSE(heap.popReady(10, e));     // next is still future
    EXPECT_EQ(heap.nextCycle(), 11u);
}

TEST(CompletionHeapTest, PeekAndPopFrontMatchPopReady)
{
    // peekReady/popFront is the copy-free consumption path; it must
    // yield exactly the popReady sequence.
    std::mt19937 rng(7);
    std::vector<Event> pushed;
    for (uint32_t i = 0; i < 200; i++)
        pushed.push_back({rng() % 50, i});

    sim::CompletionHeap<Event> a;
    sim::CompletionHeap<Event> b;
    for (const Event &e : pushed) {
        a.push(e);
        b.push(e);
    }

    std::vector<Event> via_pop = drain(a, 50);
    std::vector<Event> via_peek;
    while (const Event *e = b.peekReady(50)) {
        via_peek.push_back(*e);
        b.popFront();
    }
    ASSERT_EQ(via_pop.size(), pushed.size());
    ASSERT_EQ(via_peek.size(), pushed.size());
    for (size_t i = 0; i < via_pop.size(); i++) {
        EXPECT_EQ(via_pop[i].cycle, via_peek[i].cycle) << i;
        EXPECT_EQ(via_pop[i].tag, via_peek[i].tag) << i;
    }
}

TEST(CompletionHeapTest, TieOrderIsAFunctionOfPushHistoryAlone)
{
    // Two heaps fed the same push/pop history must pop same-cycle
    // ties identically — golden stats depend on that order, and it
    // must not depend on slab slot numbering (which differs once the
    // free list has churned).
    sim::CompletionHeap<Event> fresh;
    sim::CompletionHeap<Event> churned;
    // Pre-churn one heap so its free list is non-empty and slots are
    // handed out in recycled order.
    for (uint32_t i = 0; i < 32; i++)
        churned.push({i, 1000 + i});
    Event sink;
    while (churned.popReady(31, sink)) {
    }

    std::mt19937 rng(21);
    for (uint32_t i = 0; i < 300; i++) {
        Event e{rng() % 8, i};   // heavy ties across 8 cycles
        fresh.push(e);
        churned.push(e);
    }
    std::vector<Event> from_fresh = drain(fresh, 8);
    std::vector<Event> from_churned = drain(churned, 8);
    ASSERT_EQ(from_fresh.size(), from_churned.size());
    for (size_t i = 0; i < from_fresh.size(); i++)
        EXPECT_EQ(from_fresh[i].tag, from_churned[i].tag) << i;
}

TEST(CompletionHeapTest, SteadyStateChurnRecyclesSlabSlots)
{
    // Interleaved push/pop at bounded occupancy: forEachInOrder
    // never visits more events than are pending, i.e. the slab is
    // recycled through the free list rather than growing per push.
    sim::CompletionHeap<Event> heap;
    uint64_t now = 0;
    std::mt19937 rng(3);
    for (int round = 0; round < 1000; round++) {
        heap.push({now + 1 + rng() % 4, static_cast<uint32_t>(round)});
        if (heap.size() > 8) {
            Event e;
            while (heap.popReady(++now, e)) {
            }
        }
        size_t visited = 0;
        heap.forEachInOrder([&](const Event &) { visited++; });
        EXPECT_EQ(visited, heap.size());
        EXPECT_LE(heap.size(), 16u);
    }
}

TEST(CompletionHeapTest, ClearThenReuseMatchesAFreshHeap)
{
    sim::CompletionHeap<Event> reused;
    for (uint32_t i = 0; i < 64; i++)
        reused.push({64 - i, i});
    reused.clear();
    EXPECT_TRUE(reused.empty());
    EXPECT_EQ(reused.size(), 0u);

    sim::CompletionHeap<Event> fresh;
    std::mt19937 rng(11);
    for (uint32_t i = 0; i < 128; i++) {
        Event e{rng() % 16, i};
        reused.push(e);
        fresh.push(e);
    }
    std::vector<Event> a = drain(reused, 16);
    std::vector<Event> b = drain(fresh, 16);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i].tag, b[i].tag) << i;
}

TEST(CompletionHeapTest, VerbatimAppendReproducesBackingOrder)
{
    // Serialize via forEachInOrder, restore via appendVerbatim: the
    // restored heap must serialize identically AND pop identically —
    // the snapshot byte-stability contract.
    sim::CompletionHeap<Event> original;
    std::mt19937 rng(17);
    for (uint32_t i = 0; i < 100; i++)
        original.push({rng() % 20, i});
    // Partially drain so the heap's internal layout is not just
    // insertion order.
    Event sink;
    for (int i = 0; i < 30; i++)
        original.popReady(20, sink);

    std::vector<Event> saved;
    original.forEachInOrder(
        [&](const Event &e) { saved.push_back(e); });

    sim::CompletionHeap<Event> restored;
    for (const Event &e : saved)
        restored.appendVerbatim(e);

    std::vector<Event> resaved;
    restored.forEachInOrder(
        [&](const Event &e) { resaved.push_back(e); });
    ASSERT_EQ(saved.size(), resaved.size());
    for (size_t i = 0; i < saved.size(); i++)
        EXPECT_EQ(saved[i].tag, resaved[i].tag) << i;

    std::vector<Event> a = drain(original, 20);
    std::vector<Event> b = drain(restored, 20);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i].tag, b[i].tag) << i;
}

} // namespace
