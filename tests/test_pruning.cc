/**
 * @file
 * Tests for the pruning optimization: replacing confidently
 * predictable sub-trees with Vp_Inst / Ap_Inst (paper Section 4.2.5).
 */

#include <gtest/gtest.h>

#include "core/uthread_builder.hh"
#include "prb_fixture.hh"
#include "vpred/value_predictor.hh"

namespace
{

using namespace ssmt::core;
using namespace ssmt::isa;
using ssmt::test::PrbFiller;
using ssmt::test::pathIdOf;

class PruningTest : public testing::Test
{
  protected:
    Prb prb{64};
    ssmt::vpred::ValuePredictor vp{256};
    ssmt::vpred::ValuePredictor ap{256};

    BuilderConfig
    pruneConfig()
    {
        BuilderConfig cfg;
        cfg.pruningEnabled = true;
        return cfg;
    }
};

TEST_F(PruningTest, ConfidentValueSubtreeReplacedByVpInst)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // A 3-op sub-tree producing r3; the final producer is marked
    // value-confident in the PRB.
    fill.alu(10, Opcode::Add, 1, 6, 7, 0);
    fill.alui(11, Opcode::Slli, 2, 1, 2, 0);
    fill.alu(12, Opcode::Xor, 3, 2, 1, 0, /*vp_conf=*/true);
    fill.branch(13, Opcode::Bne, 3, 0, 20, true);

    UthreadBuilder builder(pruneConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_TRUE(thread->pruned);
    // The whole sub-tree collapses to Vp_Inst + Store_PCache.
    ASSERT_EQ(thread->size(), 2);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::VpInst);
    EXPECT_EQ(thread->ops[0].inst.rd, 3);
    EXPECT_EQ(thread->ops[0].origPc, 12u);
    // The live-in dependencies vanish with the sub-tree.
    EXPECT_TRUE(thread->liveIns.empty());
    EXPECT_EQ(builder.stats().prunedSubtrees, 1u);
    EXPECT_EQ(builder.stats().prunedRoutines, 1u);
}

TEST_F(PruningTest, UnconfidentOpsUntouched)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.alu(10, Opcode::Add, 1, 6, 7, 0);
    fill.branch(11, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(pruneConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_FALSE(thread->pruned);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::Add);
}

TEST_F(PruningTest, AddressPrunedLoadKeepsLoadAddsApInst)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // Base-address sub-tree feeding a load; the load's address is
    // confident but its value is not.
    fill.alu(10, Opcode::Add, 1, 6, 7, 0);
    fill.load(11, 2, 1, 16, 0x200, 9, /*vp_conf=*/false,
              /*ap_conf=*/true);
    fill.branch(12, Opcode::Bne, 2, 0, 20, true);

    UthreadBuilder builder(pruneConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_TRUE(thread->pruned);
    // Ap_Inst provides r1; the load survives ("the prunable load
    // itself is not removed"); the address sub-tree dies.
    ASSERT_EQ(thread->size(), 3);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::ApInst);
    EXPECT_EQ(thread->ops[0].inst.rd, 1);
    EXPECT_EQ(thread->ops[0].origPc, 11u);
    EXPECT_TRUE(thread->ops[1].inst.isLoad());
    EXPECT_TRUE(thread->liveIns.empty());
}

TEST_F(PruningTest, ValueConfidentLoadPrunedAsValue)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.alu(10, Opcode::Add, 1, 6, 7, 0);
    fill.load(11, 2, 1, 16, 0x200, 9, /*vp_conf=*/true,
              /*ap_conf=*/true);
    fill.branch(12, Opcode::Bne, 2, 0, 20, true);

    UthreadBuilder builder(pruneConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    // Value pruning wins: no load, no Ap_Inst, just Vp_Inst.
    ASSERT_EQ(thread->size(), 2);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::VpInst);
    EXPECT_FALSE(thread->speculatesOnMemory);
}

TEST_F(PruningTest, TerminatingBranchNeverPruned)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.alu(10, Opcode::Add, 1, 6, 7, 0, /*vp_conf=*/true);
    fill.branch(11, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(pruneConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_EQ(thread->ops.back().inst.op, Opcode::StPCache);
}

TEST_F(PruningTest, LdiNotWorthPruning)
{
    // Pruning a constant gains nothing; the builder skips Ldi.
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 42, /*vp_conf=*/true);
    fill.alu(11, Opcode::Add, 2, 1, 6, 0);
    fill.branch(12, Opcode::Bne, 2, 0, 20, true);

    BuilderConfig cfg = pruneConfig();
    cfg.constantPropagation = false;    // keep the Ldi visible
    cfg.moveElimination = false;
    UthreadBuilder builder(cfg);
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::Ldi);
}

TEST_F(PruningTest, PruningShortensChainAndSize)
{
    // Figure 8's claim in miniature: pruning shortens routines and
    // dependency chains.
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.alu(10, Opcode::Add, 1, 6, 7, 0);
    fill.alu(11, Opcode::Mul, 2, 1, 1, 0);
    fill.alu(12, Opcode::Xor, 3, 2, 1, 0, /*vp_conf=*/true);
    fill.alu(13, Opcode::Add, 4, 3, 8, 0);      // r8 live-in
    fill.branch(14, Opcode::Bne, 4, 0, 20, true);

    BuilderConfig raw;
    raw.pruningEnabled = false;
    UthreadBuilder raw_builder(raw);
    UthreadBuilder prune_builder(pruneConfig());
    auto unpruned = raw_builder.build(prb, pathIdOf({5}), 1, vp, ap);
    auto pruned = prune_builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(unpruned && pruned);
    EXPECT_LT(pruned->size(), unpruned->size());
    EXPECT_LT(pruned->longestChain, unpruned->longestChain);
    EXPECT_LT(pruned->liveIns.size(), unpruned->liveIns.size());
}

TEST_F(PruningTest, AheadPropagatedToVpInst)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // Two instances of the confident pc in scope.
    fill.alui(11, Opcode::Addi, 1, 1, 1, 1, /*vp_conf=*/true);
    fill.alui(11, Opcode::Addi, 1, 1, 1, 2, /*vp_conf=*/true);
    fill.branch(12, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(pruneConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    // Both addis pruned; DCE keeps only the younger (its value feeds
    // the branch), whose ahead is 2.
    ASSERT_EQ(thread->size(), 2);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::VpInst);
    EXPECT_EQ(thread->ops[0].ahead, 2u);
}

} // namespace
