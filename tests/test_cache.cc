/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "workloads/workloads.hh"

namespace
{

using ssmt::memory::Cache;

TEST(CacheTest, ColdMissThenHit)
{
    Cache c("t", 1024, 2, 64);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, SameLineSharesOneEntry)
{
    Cache c("t", 1024, 2, 64);
    c.access(0x100);
    EXPECT_TRUE(c.access(0x13f));   // same 64B line
    EXPECT_FALSE(c.access(0x140));  // next line
}

TEST(CacheTest, NoAllocateOnMissLeavesLineAbsent)
{
    Cache c("t", 1024, 2, 64);
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEvictionOrder)
{
    // 2-way, 64B lines, 2 sets: set stride is 128.
    Cache c("t", 256, 2, 64);
    uint64_t set0_a = 0 * 128;
    uint64_t set0_b = 1 * 128 + 0;  // wait: compute carefully below
    (void)set0_b;
    // Lines mapping to set 0: line numbers 0, 2, 4 -> addrs 0, 128,
    // 256.
    c.access(0);
    c.access(128);
    c.access(0);            // touch 0: now 128 is LRU
    c.access(256);          // evicts 128
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(128));
    EXPECT_TRUE(c.probe(256));
    (void)set0_a;
}

TEST(CacheTest, InvalidateRemovesLine)
{
    Cache c("t", 1024, 2, 64);
    c.access(0x200);
    EXPECT_TRUE(c.probe(0x200));
    c.invalidate(0x200);
    EXPECT_FALSE(c.probe(0x200));
}

TEST(CacheTest, FillWithoutAccounting)
{
    Cache c("t", 1024, 2, 64);
    c.fill(0x300);
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.probe(0x300));
}

TEST(CacheTest, ResetClearsStateAndCounters)
{
    Cache c("t", 1024, 2, 64);
    c.access(0x100);
    c.reset();
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    EXPECT_FALSE(c.probe(0x100));
}

TEST(CacheDeathTest, NonPowerOfTwoGeometryPanics)
{
    EXPECT_DEATH(Cache("bad", 1000, 2, 64), "power-of-two");
}

/** Property sweep: a cache never holds more distinct lines than its
 *  capacity, and a working set within one set's capacity never
 *  misses after warm-up. */
struct Geometry
{
    uint64_t size;
    uint32_t assoc;
    uint32_t line;
};

class CacheGeometry : public testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometry, WorkingSetWithinAssocAlwaysHitsWarm)
{
    const Geometry &g = GetParam();
    Cache c("t", g.size, g.assoc, g.line);
    uint64_t num_sets = c.numSets();
    // Pick `assoc` addresses all mapping to set 0.
    std::vector<uint64_t> addrs;
    for (uint32_t i = 0; i < g.assoc; i++)
        addrs.push_back(static_cast<uint64_t>(i) * num_sets * g.line);
    for (uint64_t a : addrs)
        c.access(a);
    for (int round = 0; round < 3; round++)
        for (uint64_t a : addrs)
            EXPECT_TRUE(c.access(a));
}

TEST_P(CacheGeometry, ConflictSetOverAssocThrashes)
{
    const Geometry &g = GetParam();
    Cache c("t", g.size, g.assoc, g.line);
    uint64_t num_sets = c.numSets();
    // assoc+1 addresses in one set, accessed round-robin: with true
    // LRU every access misses after warm-up.
    std::vector<uint64_t> addrs;
    for (uint32_t i = 0; i < g.assoc + 1; i++)
        addrs.push_back(static_cast<uint64_t>(i) * num_sets * g.line);
    for (uint64_t a : addrs)
        c.access(a);
    for (int round = 0; round < 3; round++)
        for (uint64_t a : addrs)
            EXPECT_FALSE(c.access(a));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Values(Geometry{1024, 1, 32}, Geometry{1024, 2, 64},
                    Geometry{4096, 4, 64}, Geometry{64 * 1024, 2, 64},
                    Geometry{64 * 1024, 4, 64},
                    Geometry{1024 * 1024, 8, 64}));

/** Property: hit rate of a random stream is monotone in capacity. */
TEST(CacheTest, HitRateMonotoneInCapacity)
{
    ssmt::workloads::Rng rng(7);
    std::vector<uint64_t> stream;
    for (int i = 0; i < 20000; i++)
        stream.push_back(rng.nextBelow(1 << 16) & ~7ull);
    double prev_rate = -1.0;
    for (uint64_t size : {4 * 1024, 16 * 1024, 64 * 1024}) {
        Cache c("t", size, 4, 64);
        for (uint64_t a : stream)
            c.access(a);
        double rate = static_cast<double>(c.hits()) / c.accesses();
        EXPECT_GE(rate, prev_rate);
        prev_rate = rate;
    }
}

} // namespace
