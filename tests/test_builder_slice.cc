/**
 * @file
 * Tests for Microthread Builder slice extraction: scope delimiting,
 * termination rules, spawn-point selection, seq-delta, and the
 * prefix/expected split (paper Sections 4.2.2 and 4.2.4).
 *
 * Optimizations are disabled here so the raw extraction is visible;
 * test_optimizations.cc and test_pruning.cc cover the MCB passes.
 */

#include <gtest/gtest.h>

#include "core/uthread_builder.hh"
#include "prb_fixture.hh"
#include "vpred/value_predictor.hh"

namespace
{

using namespace ssmt::core;
using namespace ssmt::isa;
using ssmt::test::PrbFiller;
using ssmt::test::pathIdOf;

BuilderConfig
rawConfig()
{
    BuilderConfig cfg;
    cfg.moveElimination = false;
    cfg.constantPropagation = false;
    cfg.pruningEnabled = false;
    return cfg;
}

class BuilderSliceTest : public testing::Test
{
  protected:
    Prb prb{64};
    ssmt::vpred::ValuePredictor vp{256};
    ssmt::vpred::ValuePredictor ap{256};
};

TEST_F(BuilderSliceTest, SimpleChainExtracted)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);                     // path branch (n=1)
    fill.ldi(10, 1, 7);
    fill.alui(11, Opcode::Addi, 2, 1, 1, 8);
    fill.alu(12, Opcode::Add, 3, 2, 2, 16);
    fill.branch(13, Opcode::Bne, 3, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());

    ASSERT_EQ(thread->size(), 4);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::Ldi);
    EXPECT_EQ(thread->ops[1].inst.op, Opcode::Addi);
    EXPECT_EQ(thread->ops[2].inst.op, Opcode::Add);
    EXPECT_EQ(thread->ops[3].inst.op, Opcode::StPCache);
    EXPECT_EQ(thread->ops[3].branchOp, Opcode::Bne);
    EXPECT_EQ(thread->branchPc, 13u);
    EXPECT_EQ(thread->pathN, 1);
    // Spawn at the scope start (no dependencies force it later).
    EXPECT_EQ(thread->spawnPc, 10u);
    EXPECT_EQ(thread->seqDelta, 3u);
    EXPECT_TRUE(thread->liveIns.empty());
    EXPECT_FALSE(thread->speculatesOnMemory);
}

TEST_F(BuilderSliceTest, UnrelatedInstructionsExcluded)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 7);
    fill.ldi(11, 9, 99);                        // dead to the branch
    fill.alui(12, Opcode::Addi, 2, 1, 1, 8);
    fill.branch(13, Opcode::Beq, 2, 0, 20, false);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    for (const MicroOp &op : thread->ops)
        EXPECT_NE(op.origPc, 11u);
    EXPECT_EQ(thread->size(), 3);
}

TEST_F(BuilderSliceTest, LiveInsComputed)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // r6 and r7 produced before the scope -> live-ins.
    fill.alu(10, Opcode::Add, 2, 6, 7, 0);
    fill.branch(11, Opcode::Blt, 2, 6, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    ASSERT_EQ(thread->liveIns.size(), 2u);
    EXPECT_EQ(thread->liveIns[0], 6);
    EXPECT_EQ(thread->liveIns[1], 7);
}

TEST_F(BuilderSliceTest, MemoryDependenceTerminatesSlice)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 0x100);
    fill.store(11, 1, 2, 0, 0x100);             // store feeds the load
    fill.load(12, 4, 1, 0, 0x100, 55);
    fill.branch(13, Opcode::Bne, 4, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_EQ(builder.stats().stopsMemDep, 1u);
    // The store is NOT included; the slice is load + Store_PCache,
    // and the spawn point sits after the store so the dependency is
    // architecturally satisfied.
    ASSERT_EQ(thread->size(), 2);
    EXPECT_TRUE(thread->ops[0].inst.isLoad());
    EXPECT_EQ(thread->spawnPc, 12u);
    EXPECT_EQ(thread->seqDelta, 1u);
    EXPECT_TRUE(thread->speculatesOnMemory);
    // r1 (the base) is a live-in now.
    ASSERT_EQ(thread->liveIns.size(), 1u);
    EXPECT_EQ(thread->liveIns[0], 1);
}

TEST_F(BuilderSliceTest, StoreToOtherAddressDoesNotTerminate)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 0x100);
    fill.store(11, 1, 2, 8, 0x108);             // different word
    fill.load(12, 4, 1, 0, 0x100, 55);
    fill.branch(13, Opcode::Bne, 4, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_EQ(builder.stats().stopsMemDep, 0u);
    EXPECT_EQ(thread->spawnPc, 10u);
    EXPECT_EQ(thread->size(), 3);   // ldi, ld, st_pcache
}

TEST_F(BuilderSliceTest, McbCapacityTerminatesSlice)
{
    BuilderConfig cfg = rawConfig();
    cfg.mcbEntries = 4;
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // Chain of 6 adds; MCB of 4 holds branch + 3 producers.
    fill.ldi(10, 1, 1);
    for (uint64_t pc = 11; pc <= 16; pc++)
        fill.alui(pc, Opcode::Addi, 1, 1, 1, 0);
    fill.branch(17, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(cfg);
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_EQ(builder.stats().stopsMcbFull, 1u);
    EXPECT_EQ(thread->size(), 4);
    // Spawn point must come after the youngest un-sliced producer of
    // the live-in r1 (pc 13), i.e. at pc 14.
    EXPECT_EQ(thread->spawnPc, 14u);
    ASSERT_EQ(thread->liveIns.size(), 1u);
    EXPECT_EQ(thread->liveIns[0], 1);
}

TEST_F(BuilderSliceTest, PrefixAndExpectedSplitAtSpawn)
{
    PrbFiller fill(prb);
    fill.taken_jump(3, 10);                     // oldest path branch
    fill.ldi(10, 1, 256);
    fill.taken_jump(11, 12);                    // second path branch
    fill.alui(12, Opcode::Addi, 2, 1, 4, 260);
    fill.branch(13, Opcode::Bne, 2, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({3, 11}), 2, vp, ap);
    ASSERT_TRUE(thread.has_value());
    EXPECT_EQ(thread->spawnPc, 10u);
    // Branch at pc 3 precedes the spawn -> prefix; pc 11 follows ->
    // expected.
    ASSERT_EQ(thread->prefix.size(), 1u);
    EXPECT_EQ(thread->prefix[0].pc, 3u);
    ASSERT_EQ(thread->expected.size(), 1u);
    EXPECT_EQ(thread->expected[0].pc, 11u);
    EXPECT_EQ(thread->expected[0].target, 12u);
}

TEST_F(BuilderSliceTest, JalProducerBecomesConstant)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    // A call writes the link register, which the branch compares.
    fill.push(10,
              Inst{Opcode::Jal, kRegLink, kNoReg, kNoReg, 40},
              11, 0, true, 40);
    fill.branch(40, Opcode::Bne, kRegLink, 0, 50, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5, 10}), 2, vp, ap);
    ASSERT_TRUE(thread.has_value());
    ASSERT_EQ(thread->size(), 2);
    EXPECT_EQ(thread->ops[0].inst.op, Opcode::Ldi);
    EXPECT_EQ(thread->ops[0].inst.imm, 11);
    EXPECT_EQ(thread->ops[0].inst.rd, kRegLink);
}

TEST_F(BuilderSliceTest, AheadCountsInstancesFromSpawn)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 9, 0);
    // The same static pc (a loop body instance appearing twice).
    fill.alui(11, Opcode::Addi, 1, 1, 1, 1);
    fill.alui(11, Opcode::Addi, 1, 1, 1, 2);
    fill.branch(12, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    // ops: addi(older, ahead=1), addi(younger, ahead=2), st_pcache.
    ASSERT_EQ(thread->size(), 3);
    EXPECT_EQ(thread->ops[0].ahead, 1u);
    EXPECT_EQ(thread->ops[1].ahead, 2u);
}

TEST_F(BuilderSliceTest, IndirectTerminatorSlicesTargetChain)
{
    // An indirect jump through a register loaded from a dispatch
    // table (the interpreter idiom): the slice must pre-compute the
    // *target*, and Store_PCache must carry the Jr branch op.
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 0x400);
    fill.load(11, 2, 1, 0, 0x400, 77);
    fill.push(12, Inst{Opcode::Jr, kNoReg, 2, kNoReg, 0}, 0, 0, true,
              77);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    ASSERT_EQ(thread->size(), 3);
    EXPECT_EQ(thread->ops.back().inst.op, Opcode::StPCache);
    EXPECT_EQ(thread->ops.back().branchOp, Opcode::Jr);
    EXPECT_EQ(thread->ops.back().inst.rs1, 2);
    EXPECT_TRUE(thread->ops[1].inst.isLoad());
    EXPECT_EQ(thread->branchPc, 12u);
}

TEST_F(BuilderSliceTest, PathLongerThanPrbFails)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.branch(10, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 4, vp, ap);
    EXPECT_FALSE(thread.has_value());
    EXPECT_EQ(builder.stats().failScopeNotInPrb, 1u);
}

TEST_F(BuilderSliceTest, PathIdMismatchFails)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.branch(10, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, 0xdeadbeef, 1, vp, ap);
    EXPECT_FALSE(thread.has_value());
    EXPECT_EQ(builder.stats().failPathMismatch, 1u);
}

TEST_F(BuilderSliceTest, StatsAccumulateAcrossBuilds)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 7);
    fill.branch(11, Opcode::Bne, 1, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    ASSERT_TRUE(builder.build(prb, pathIdOf({5}), 1, vp, ap));
    ASSERT_TRUE(builder.build(prb, pathIdOf({5}), 1, vp, ap));
    EXPECT_EQ(builder.stats().requests, 2u);
    EXPECT_EQ(builder.stats().built, 2u);
    EXPECT_GT(builder.stats().avgRoutineSize(), 0.0);
    EXPECT_GT(builder.stats().avgLongestChain(), 0.0);
}

TEST_F(BuilderSliceTest, LongestChainReflectsDependencies)
{
    PrbFiller fill(prb);
    fill.taken_jump(5, 10);
    fill.ldi(10, 1, 1);
    fill.alui(11, Opcode::Addi, 2, 1, 1, 2);    // depends on 1
    fill.ldi(12, 3, 9);                         // independent
    fill.alu(13, Opcode::Add, 4, 2, 3, 11);     // depends on both
    fill.branch(14, Opcode::Bne, 4, 0, 20, true);

    UthreadBuilder builder(rawConfig());
    auto thread = builder.build(prb, pathIdOf({5}), 1, vp, ap);
    ASSERT_TRUE(thread.has_value());
    // ldi -> addi -> add -> st_pcache = 4-deep chain.
    EXPECT_EQ(thread->longestChain, 4);
}

} // namespace
