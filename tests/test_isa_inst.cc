/**
 * @file
 * Unit tests for opcode classification and the Inst helpers.
 */

#include <gtest/gtest.h>

#include "isa/inst.hh"

namespace
{

using namespace ssmt::isa;

TEST(OpClassTest, AluOpsAreIntAlu)
{
    for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::And,
                      Opcode::Or, Opcode::Xor, Opcode::Sll,
                      Opcode::Srl, Opcode::Sra, Opcode::Slt,
                      Opcode::Sltu, Opcode::Cmpeq, Opcode::Addi,
                      Opcode::Andi, Opcode::Ori, Opcode::Xori,
                      Opcode::Slli, Opcode::Srli, Opcode::Srai,
                      Opcode::Slti, Opcode::Ldi}) {
        EXPECT_EQ(opClass(op), OpClass::IntAlu) << opcodeName(op);
    }
}

TEST(OpClassTest, MulDivLatencies)
{
    EXPECT_EQ(opClass(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opClass(Opcode::Div), OpClass::IntDiv);
    EXPECT_GT(opLatency(Opcode::Div), opLatency(Opcode::Mul));
    EXPECT_GT(opLatency(Opcode::Mul), opLatency(Opcode::Add));
    EXPECT_EQ(opLatency(Opcode::Add), 1);
}

TEST(OpClassTest, MemoryOps)
{
    EXPECT_EQ(opClass(Opcode::Ld), OpClass::MemRead);
    EXPECT_EQ(opClass(Opcode::St), OpClass::MemWrite);
}

TEST(OpClassTest, ControlOps)
{
    for (Opcode op : {Opcode::Beq, Opcode::Bne, Opcode::Blt,
                      Opcode::Bge, Opcode::Bltu, Opcode::Bgeu,
                      Opcode::J, Opcode::Jal, Opcode::Jr,
                      Opcode::Jalr}) {
        EXPECT_TRUE(isControl(op)) << opcodeName(op);
    }
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_FALSE(isControl(Opcode::Halt));
}

TEST(OpClassTest, CondBranchSubset)
{
    for (Opcode op : {Opcode::Beq, Opcode::Bne, Opcode::Blt,
                      Opcode::Bge, Opcode::Bltu, Opcode::Bgeu}) {
        EXPECT_TRUE(isCondBranch(op)) << opcodeName(op);
    }
    EXPECT_FALSE(isCondBranch(Opcode::J));
    EXPECT_FALSE(isCondBranch(Opcode::Jr));
}

TEST(OpClassTest, IndirectSubset)
{
    EXPECT_TRUE(isIndirect(Opcode::Jr));
    EXPECT_TRUE(isIndirect(Opcode::Jalr));
    EXPECT_FALSE(isIndirect(Opcode::J));
    EXPECT_FALSE(isIndirect(Opcode::Beq));
}

TEST(OpClassTest, MicroOnlySubset)
{
    EXPECT_TRUE(isMicroOnly(Opcode::StPCache));
    EXPECT_TRUE(isMicroOnly(Opcode::VpInst));
    EXPECT_TRUE(isMicroOnly(Opcode::ApInst));
    EXPECT_FALSE(isMicroOnly(Opcode::Add));
}

TEST(OpClassTest, EveryOpcodeHasAName)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); i++) {
        const char *name = opcodeName(static_cast<Opcode>(i));
        EXPECT_NE(name, nullptr);
        EXPECT_STRNE(name, "???");
    }
}

TEST(InstTest, TerminatingBranchDefinition)
{
    Inst beq{Opcode::Beq, kNoReg, 1, 2, 5};
    Inst jr{Opcode::Jr, kNoReg, 1, kNoReg, 0};
    Inst j{Opcode::J, kNoReg, kNoReg, kNoReg, 5};
    Inst jal{Opcode::Jal, kRegLink, kNoReg, kNoReg, 5};
    EXPECT_TRUE(beq.isTerminatingBranch());
    EXPECT_TRUE(jr.isTerminatingBranch());
    EXPECT_FALSE(j.isTerminatingBranch());
    EXPECT_FALSE(jal.isTerminatingBranch());
}

TEST(InstTest, NumSrcsCountsUsedOperands)
{
    Inst add{Opcode::Add, 1, 2, 3, 0};
    EXPECT_EQ(add.numSrcs(), 2);
    Inst addi{Opcode::Addi, 1, 2, kNoReg, 5};
    EXPECT_EQ(addi.numSrcs(), 1);
    Inst ldi{Opcode::Ldi, 1, kNoReg, kNoReg, 5};
    EXPECT_EQ(ldi.numSrcs(), 0);
}

TEST(InstTest, WritesRegExcludesZeroAndNone)
{
    Inst to_r1{Opcode::Add, 1, 2, 3, 0};
    EXPECT_TRUE(to_r1.writesReg());
    Inst to_zero{Opcode::Add, kRegZero, 2, 3, 0};
    EXPECT_FALSE(to_zero.writesReg());
    Inst store{Opcode::St, kNoReg, 1, 2, 0};
    EXPECT_FALSE(store.writesReg());
}

TEST(InstTest, ToStringContainsMnemonic)
{
    Inst add{Opcode::Add, 1, 2, 3, 0};
    EXPECT_NE(add.toString().find("add"), std::string::npos);
    Inst ld{Opcode::Ld, 1, 2, kNoReg, 16};
    EXPECT_NE(ld.toString().find("16(r2)"), std::string::npos);
    Inst beq{Opcode::Beq, kNoReg, 1, 2, 42};
    EXPECT_NE(beq.toString().find("#42"), std::string::npos);
}

} // namespace
