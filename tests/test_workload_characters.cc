/**
 * @file
 * Characterization tests: each SPECint proxy exists to imitate a
 * specific behaviour (DESIGN.md Section 1). These tests pin those
 * characters down so workload edits cannot silently destroy the
 * properties the reproduction depends on.
 */

#include <gtest/gtest.h>

#include "sim/path_profiler.hh"
#include "sim/sim_runner.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

sim::Stats
baselineOf(const char *name)
{
    sim::MachineConfig cfg;
    return sim::runProgram(workloads::makeWorkload(name), cfg);
}

TEST(WorkloadCharacterTest, EonAndM88ksimAreWellBehaved)
{
    // The paper's eon barely tolerates microthread overhead because
    // its branches are already predictable; our eon and m88ksim
    // proxies carry that role.
    for (const char *name : {"eon_2k", "m88ksim"}) {
        sim::Stats stats = baselineOf(name);
        EXPECT_LT(stats.hwMispredictRate(), 0.01) << name;
        EXPECT_GT(stats.ipc(), 4.0) << name;
    }
}

TEST(WorkloadCharacterTest, GccFamilyIsBranchHostile)
{
    // gcc is the classic hard-to-predict SPECint member.
    for (const char *name : {"gcc", "gcc_2k"}) {
        sim::Stats stats = baselineOf(name);
        EXPECT_GT(stats.hwMispredictRate(), 0.15) << name;
        EXPECT_GT(stats.indirectBranches, 1000u)
            << name << " needs dispatch jr traffic";
    }
}

TEST(WorkloadCharacterTest, McfIsMemoryBound)
{
    sim::Stats stats = baselineOf("mcf_2k");
    // Large pointer-chasing footprint: plenty of L2 misses and a
    // crawling IPC, exactly the profile that makes microthread
    // prefetching matter (Section 5.3).
    EXPECT_GT(stats.l2Misses, 10'000u);
    EXPECT_LT(stats.ipc(), 0.6);
}

TEST(WorkloadCharacterTest, InterpretersUseIndirectDispatch)
{
    for (const char *name : {"li", "gcc", "gcc_2k"}) {
        sim::Stats stats = baselineOf(name);
        double indirect_frac =
            static_cast<double>(stats.indirectBranches) /
            (stats.condBranches + stats.indirectBranches);
        EXPECT_GT(indirect_frac, 0.05) << name;
    }
}

TEST(WorkloadCharacterTest, CompressHasMediumDifficulty)
{
    sim::Stats stats = baselineOf("comp");
    EXPECT_GT(stats.hwMispredictRate(), 0.03);
    EXPECT_LT(stats.hwMispredictRate(), 0.15);
}

TEST(WorkloadCharacterTest, AnnealingIsCoinFlipHeavy)
{
    // twolf's accept/reject branch starts as a coin flip.
    sim::Stats stats = baselineOf("twolf_2k");
    EXPECT_GT(stats.hwMispredictRate(), 0.20);
}

TEST(WorkloadCharacterTest, SuiteSpansAnIpcRange)
{
    // The suite must cover compute-bound and stall-bound behaviour;
    // a collapsed range would make suite averages meaningless.
    double min_ipc = 1e9, max_ipc = 0;
    for (const char *name : {"eon_2k", "mcf_2k", "ijpeg", "gap_2k"}) {
        double ipc = baselineOf(name).ipc();
        min_ipc = std::min(min_ipc, ipc);
        max_ipc = std::max(max_ipc, ipc);
    }
    EXPECT_GT(max_ipc / min_ipc, 5.0);
}

TEST(WorkloadCharacterTest, VortexMispredictsConcentrateInColdKeys)
{
    // vortex's paper profile: high misprediction coverage at very
    // low execution coverage. The skewed-key design should keep the
    // difficult-path execution share small.
    sim::PathProfiler profiler({10});
    profiler.profile(workloads::makeWorkload("vortex"), 20'000'000);
    double exe = profiler.pathExeCoverage(10, 0.10);
    double mis = profiler.pathMisCoverage(10, 0.10);
    EXPECT_GT(mis, 0.5);
    EXPECT_LT(exe, 0.75);
    EXPECT_GT(mis, exe);
}

TEST(WorkloadCharacterTest, GapCarriesAreHardButComputable)
{
    // Carry-out of random 64-bit adds: ~50% taken, hardware-hostile.
    sim::Stats base = baselineOf("gap_2k");
    EXPECT_GT(base.hwMispredictRate(), 0.15);
    // And pre-computable: microthread predictions, when delivered,
    // are essentially always right.
    sim::MachineConfig cfg;
    cfg.mode = sim::Mode::Microthread;
    sim::Stats mt =
        sim::runProgram(workloads::makeWorkload("gap_2k"), cfg);
    if (mt.microPredCorrect + mt.microPredWrong > 50) {
        EXPECT_GT(mt.microPredCorrect,
                  9 * (mt.microPredWrong + 1));
    }
}

TEST(WorkloadCharacterTest, ScopeAveragesScaleWithWorkloadShape)
{
    // bzip2-style run-length behaviour produces longer scopes than
    // tight interpreter loops at the same n (cf. Table 1's spread).
    sim::PathProfiler bzip({10});
    bzip.profile(workloads::makeWorkload("bzip2_2k"), 5'000'000);
    sim::PathProfiler li({10});
    li.profile(workloads::makeWorkload("li"), 5'000'000);
    EXPECT_GT(bzip.avgScope(10), 0.0);
    EXPECT_GT(li.avgScope(10), 0.0);
    EXPECT_NE(bzip.avgScope(10), li.avgScope(10));
}

} // namespace
