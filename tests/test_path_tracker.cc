/**
 * @file
 * Tests for the front-end path history tracker.
 */

#include <gtest/gtest.h>

#include "core/path_tracker.hh"

namespace
{

using namespace ssmt::core;

TEST(PathTrackerTest, RecentReturnsNewestFirst)
{
    PathTracker t(16);
    t.push(4);
    t.push(8);
    t.push(12);
    EXPECT_EQ(t.recent(0), 12u);
    EXPECT_EQ(t.recent(1), 8u);
    EXPECT_EQ(t.recent(2), 4u);
}

TEST(PathTrackerTest, RecentBeyondHistoryIsZero)
{
    PathTracker t(16);
    t.push(4);
    EXPECT_EQ(t.recent(1), 0u);
    EXPECT_EQ(t.recent(15), 0u);
}

TEST(PathTrackerTest, SizeSaturatesAtDepth)
{
    PathTracker t(4);
    for (int i = 0; i < 10; i++)
        t.push(i * 4);
    EXPECT_EQ(t.size(), 4);
    EXPECT_EQ(t.totalPushes(), 10u);
    EXPECT_EQ(t.recent(0), 36u);
    EXPECT_EQ(t.recent(3), 24u);
}

TEST(PathTrackerTest, PathIdMatchesManualHash)
{
    PathTracker t(16);
    std::vector<uint64_t> addrs = {40, 80, 120, 160, 200};
    for (uint64_t a : addrs)
        t.push(a);
    EXPECT_EQ(t.pathId(5), hashPath(addrs));
    std::vector<uint64_t> last3(addrs.end() - 3, addrs.end());
    EXPECT_EQ(t.pathId(3), hashPath(last3));
}

TEST(PathTrackerTest, WarmUpUsesAvailableHistory)
{
    PathTracker t(16);
    t.push(40);
    t.push(80);
    // Asking for n=10 with only 2 pushes hashes the 2 available.
    EXPECT_EQ(t.pathId(10),
              hashPath(std::vector<uint64_t>{40, 80}));
}

TEST(PathTrackerTest, RingOverwriteKeepsNewest)
{
    PathTracker t(4);
    for (uint64_t a : {4u, 8u, 12u, 16u, 20u, 24u})
        t.push(a);
    EXPECT_EQ(t.pathId(4),
              hashPath(std::vector<uint64_t>{12, 16, 20, 24}));
}

TEST(PathTrackerTest, DistinctCallSitesYieldDistinctIds)
{
    // The motivating property: two different prefixes ending in the
    // same branch give different Path_Ids.
    PathTracker a(16);
    PathTracker b(16);
    a.push(100);
    b.push(200);
    a.push(400);
    b.push(400);
    EXPECT_NE(a.pathId(2), b.pathId(2));
    // But the n=1 view (which forgets the call site) coincides.
    EXPECT_EQ(a.pathId(1), b.pathId(1));
}

TEST(PathTrackerTest, ResetClears)
{
    PathTracker t(8);
    t.push(4);
    t.reset();
    EXPECT_EQ(t.size(), 0);
    EXPECT_EQ(t.totalPushes(), 0u);
    EXPECT_EQ(t.pathId(4), 0u);
}

} // namespace
