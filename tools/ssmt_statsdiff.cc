/**
 * @file
 * ssmt_statsdiff: compare two golden-stats snapshots counter by
 * counter and report absolute and relative drift.
 *
 * Usage:
 *   ssmt_statsdiff [--allow c1,c2,...] [--allow-file F]
 *                  [--rel-tol R] golden.json candidate.json
 *
 * A counter is reported when its values differ; it fails the diff
 * unless it is allowlisted (via --allow / --allow-file, same syntax
 * as golden/ALLOWLIST) or its relative drift is within --rel-tol
 * (default 0: exact match required, the right default for a
 * deterministic simulator).
 *
 * Exit status: 0 identical-or-allowed, 1 non-allowlisted drift,
 * 2 bad usage or unreadable input.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "sim/golden.hh"

namespace
{

using namespace ssmt;

const char kUsage[] =
    "usage: ssmt_statsdiff [--allow c1,c2,...] [--allow-file F]"
    " [--rel-tol R]\n"
    "                      golden.json candidate.json\n";

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args(argc, argv, kUsage,
                        {{"--allow", nullptr, true, true},
                         {"--allow-file", nullptr, true},
                         {"--rel-tol", nullptr, true}});

    sim::DriftAllowlist allowlist;
    for (const std::string &list : args.all("--allow")) {
        for (const std::string &entry : cli::splitCommas(list))
            allowlist.entries.push_back(entry);
    }
    if (args.has("--allow-file")) {
        std::string path = args.str("--allow-file");
        bool existed = false;
        sim::DriftAllowlist extra =
            sim::DriftAllowlist::load(path, &existed);
        if (!existed) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         path.c_str());
            return 2;
        }
        allowlist.entries.insert(allowlist.entries.end(),
                                 extra.entries.begin(),
                                 extra.entries.end());
    }
    double rel_tol = args.dbl("--rel-tol", 0.0);
    if (rel_tol < 0.0)
        args.fail("--rel-tol must be >= 0");

    const std::vector<std::string> &files = args.positionals();
    if (files.size() != 2)
        args.usage(2);

    sim::GoldenRun golden, candidate;
    for (int side = 0; side < 2; side++) {
        std::string text = cli::readFile(files[side]);
        if (text.empty()) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         files[side].c_str());
            return 2;
        }
        std::string err;
        sim::GoldenRun &run = side == 0 ? golden : candidate;
        if (!sim::parseGolden(text, run, &err)) {
            std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                         files[side].c_str(), err.c_str());
            return 2;
        }
    }

    if (golden.workload != candidate.workload) {
        std::fprintf(stderr,
                     "note: comparing different workloads"
                     " ('%s' vs '%s')\n",
                     golden.workload.c_str(),
                     candidate.workload.c_str());
    }

    std::vector<sim::CounterDrift> drifts =
        sim::diffStats(golden.stats, candidate.stats);
    int failures = 0;
    for (const sim::CounterDrift &d : drifts) {
        bool allowed = allowlist.allows(golden.workload, d.counter) ||
                       std::fabs(d.relative()) <= rel_tol;
        long long delta =
            static_cast<long long>(d.candidate) -
            static_cast<long long>(d.golden);
        std::printf("%-9s %-28s %12llu -> %12llu  %+lld (%+.3f%%)\n",
                    allowed ? "allowed" : "DRIFT", d.counter.c_str(),
                    static_cast<unsigned long long>(d.golden),
                    static_cast<unsigned long long>(d.candidate),
                    delta, 100.0 * d.relative());
        if (!allowed)
            failures++;
    }
    if (drifts.empty()) {
        std::printf("identical: every counter matches (%s)\n",
                    golden.workload.c_str());
    } else {
        std::printf("%zu counter%s drifted, %d not allowlisted\n",
                    drifts.size(), drifts.size() == 1 ? "" : "s",
                    failures);
    }
    return failures ? 1 : 0;
}
