/**
 * @file
 * ssmt_statsdiff: compare two golden-stats snapshots counter by
 * counter and report absolute and relative drift.
 *
 * Usage:
 *   ssmt_statsdiff [--allow c1,c2,...] [--allow-file F]
 *                  [--rel-tol R] golden.json candidate.json
 *
 * A counter is reported when its values differ; it fails the diff
 * unless it is allowlisted (via --allow / --allow-file, same syntax
 * as golden/ALLOWLIST) or its relative drift is within --rel-tol
 * (default 0: exact match required, the right default for a
 * deterministic simulator).
 *
 * Exit status: 0 identical-or-allowed, 1 non-allowlisted drift,
 * 2 bad usage or unreadable input.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/golden.hh"

namespace
{

using namespace ssmt;

std::string
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "r");
    if (!file)
        return "";
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        text.append(buf, got);
    std::fclose(file);
    return text;
}

[[noreturn]] void
usage(const char *argv0, int status)
{
    std::fprintf(stderr,
                 "usage: %s [--allow c1,c2,...] [--allow-file F]"
                 " [--rel-tol R] golden.json candidate.json\n",
                 argv0);
    std::exit(status);
}

} // namespace

int
main(int argc, char **argv)
{
    sim::DriftAllowlist allowlist;
    double rel_tol = 0.0;
    std::vector<std::string> files;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--allow") {
            std::string list = value();
            size_t pos = 0;
            while (pos < list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    allowlist.entries.push_back(
                        list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else if (arg == "--allow-file") {
            std::string path = value();
            bool existed = false;
            sim::DriftAllowlist extra =
                sim::DriftAllowlist::load(path, &existed);
            if (!existed) {
                std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                             path.c_str());
                return 2;
            }
            allowlist.entries.insert(allowlist.entries.end(),
                                     extra.entries.begin(),
                                     extra.entries.end());
        } else if (arg == "--rel-tol") {
            rel_tol = std::strtod(value().c_str(), nullptr);
            if (rel_tol < 0.0)
                usage(argv[0], 2);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        usage(argv[0], 2);

    sim::GoldenRun golden, candidate;
    for (int side = 0; side < 2; side++) {
        std::string text = readFile(files[side]);
        if (text.empty()) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         files[side].c_str());
            return 2;
        }
        std::string err;
        sim::GoldenRun &run = side == 0 ? golden : candidate;
        if (!sim::parseGolden(text, run, &err)) {
            std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                         files[side].c_str(), err.c_str());
            return 2;
        }
    }

    if (golden.workload != candidate.workload) {
        std::fprintf(stderr,
                     "note: comparing different workloads"
                     " ('%s' vs '%s')\n",
                     golden.workload.c_str(),
                     candidate.workload.c_str());
    }

    std::vector<sim::CounterDrift> drifts =
        sim::diffStats(golden.stats, candidate.stats);
    int failures = 0;
    for (const sim::CounterDrift &d : drifts) {
        bool allowed = allowlist.allows(golden.workload, d.counter) ||
                       std::fabs(d.relative()) <= rel_tol;
        long long delta =
            static_cast<long long>(d.candidate) -
            static_cast<long long>(d.golden);
        std::printf("%-9s %-28s %12llu -> %12llu  %+lld (%+.3f%%)\n",
                    allowed ? "allowed" : "DRIFT", d.counter.c_str(),
                    static_cast<unsigned long long>(d.golden),
                    static_cast<unsigned long long>(d.candidate),
                    delta, 100.0 * d.relative());
        if (!allowed)
            failures++;
    }
    if (drifts.empty()) {
        std::printf("identical: every counter matches (%s)\n",
                    golden.workload.c_str());
    } else {
        std::printf("%zu counter%s drifted, %d not allowlisted\n",
                    drifts.size(), drifts.size() == 1 ? "" : "s",
                    failures);
    }
    return failures ? 1 : 0;
}
