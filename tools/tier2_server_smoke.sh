#!/bin/sh
# tier2-server round-trip smoke: start an ssmt_server daemon, submit
# the same 4-cell campaign from two concurrent thin clients, and
# require both streamed manifests byte-identical to an in-process
# runCampaign of the same spec. Then re-submit (all cache hits must
# still reproduce the bytes) and run ssmt_verify_golden --server so a
# remote batch decodes to the same counters as local execution.
#
# Usage: tier2_server_smoke.sh <bindir>   (dir holding the ssmt_*
# binaries; runs in $PWD, which ctest sets to the build dir).
set -eu

BIN=${1:?usage: tier2_server_smoke.sh <bindir>}
WORK=$PWD/server-smoke
SOCK=$WORK/sock
rm -rf "$WORK"
mkdir -p "$WORK"

SPEC_ARGS="--workloads comp --modes baseline,microthread \
    --seeds 0,4 --sample-interval 2000"

echo "[smoke] in-process reference campaign"
# shellcheck disable=SC2086
"$BIN/ssmt_campaign" run --dir "$WORK/local" $SPEC_ARGS --quiet

echo "[smoke] starting ssmt_server"
"$BIN/ssmt_server" --socket "$SOCK" --root "$WORK/root" --jobs 4 \
    >"$WORK/server.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the socket (the daemon binds before accepting).
tries=0
while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 50 ]; then
        echo "[smoke] FAIL: server socket never appeared" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "[smoke] two concurrent clients, same spec"
# shellcheck disable=SC2086
"$BIN/ssmt_campaign" run --server "$SOCK" --dir "$WORK/client-a" \
    $SPEC_ARGS --quiet &
CLIENT_A=$!
# shellcheck disable=SC2086
"$BIN/ssmt_campaign" run --server "$SOCK" --dir "$WORK/client-b" \
    $SPEC_ARGS --quiet &
CLIENT_B=$!
wait "$CLIENT_A"
wait "$CLIENT_B"

for side in client-a client-b; do
    if ! cmp -s "$WORK/local/manifest.json" \
            "$WORK/$side/manifest.json"; then
        echo "[smoke] FAIL: $side manifest differs from in-process" \
            >&2
        exit 1
    fi
done
echo "[smoke] concurrent manifests byte-identical"

echo "[smoke] cache-hit replay"
# shellcheck disable=SC2086
"$BIN/ssmt_campaign" run --server "$SOCK" --dir "$WORK/client-c" \
    $SPEC_ARGS 2>"$WORK/replay.log"
if ! cmp -s "$WORK/local/manifest.json" \
        "$WORK/client-c/manifest.json"; then
    echo "[smoke] FAIL: cached replay manifest differs" >&2
    exit 1
fi
if ! grep -q "4 cached, 0 executed" "$WORK/replay.log"; then
    echo "[smoke] FAIL: replay was not served from the store" >&2
    cat "$WORK/replay.log" >&2
    exit 1
fi
echo "[smoke] replay served entirely from the store"

echo "[smoke] remote verify-golden batch"
"$BIN/ssmt_verify_golden" --server "$SOCK" --workloads comp,mcf_2k \
    --golden-dir "${SSMT_GOLDEN_DIR:?set by ctest}" --differential

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
echo "[smoke] OK"
