/**
 * @file
 * ssmt_server: the simulation-as-a-service daemon.
 *
 * A long-running process that accepts concurrent campaign / batch
 * requests over a Unix-domain socket and multiplexes every cell onto
 * the process-wide work-stealing sim::TaskRuntime pool — so N
 * clients share one set of workers instead of oversubscribing the
 * host N times. The wire protocol (ssmt-server-v1, DESIGN.md §9) is
 * line-delimited JSON: one request object per line in, a stream of
 * event objects per line out, built entirely on existing canonical
 * codecs — cell payloads are ssmt-job-result-v1 documents (with
 * their embedded ssmt-series-v1 metrics), campaign identities are
 * canonical CampaignSpec JSON, and the terminal campaign artifact is
 * the byte-exact ssmt-campaign-v1 manifest.
 *
 * Campaigns are durable server-side: each spec maps to a directory
 * under --root keyed by the hash of its canonical spec text, so a
 * repeated submission — same client retrying, or a second concurrent
 * client asking the same question — replays finished cells from the
 * content-addressed ResultStore as cache hits and produces a
 * manifest byte-identical to an in-process runCampaign of the same
 * spec. Same-spec submissions are serialized on a per-directory
 * lock; distinct specs run fully concurrently on the shared pool.
 *
 * Isolate-mode specs are refused: subprocess isolation forks, and
 * the daemon is inherently multithreaded (client threads); run those
 * through `ssmt_campaign run --isolate` locally instead.
 *
 * A client that disconnects mid-campaign does not abort it: the
 * campaign keeps running to durable completion (store + journal),
 * and the client can reconnect and resubmit to stream the rest as
 * cache hits.
 */

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "cli_common.hh"
#include "sim/campaign.hh"
#include "sim/fsio.hh"
#include "sim/golden.hh"
#include "sim/job_codec.hh"
#include "sim/jobs.hh"
#include "sim/json_text.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"
#include "sim/taskrt.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

const char kServerSchema[] = "ssmt-server-v1";

const char kUsage[] =
    "usage: ssmt_server --socket PATH [--root DIR] [--jobs N|auto]\n"
    "\n"
    "  --socket PATH   Unix-domain socket to listen on (created;\n"
    "                  a stale socket file is replaced)\n"
    "  --root DIR      campaign state root (default ssmt-server-root);\n"
    "                  each spec gets <root>/c-<spechash>/ with the\n"
    "                  usual journal/store/manifest layout\n"
    "  --jobs N|auto   worker-pool width (default: SSMT_JOBS, cores)\n"
    "\n"
    "Protocol: ssmt-server-v1 line-delimited JSON (DESIGN.md §9).\n"
    "SIGINT/SIGTERM stop accepting and exit once clients drain.\n";

std::atomic<bool> g_stop{false};
int g_listen_fd = -1;

void
onStopSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
    // Closing the listen fd unblocks accept() so the main loop can
    // exit; in-flight connections drain normally.
    if (g_listen_fd >= 0)
        ::close(g_listen_fd);
}

uint64_t
fnv1a(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
hex16(uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Server-wide shared state: config, counters, per-campaign-dir
 *  locks. */
struct ServerState
{
    std::string root;
    unsigned jobs = 0;

    std::atomic<uint64_t> campaignsTotal{0};
    std::atomic<uint64_t> campaignsActive{0};
    std::atomic<uint64_t> batchesTotal{0};
    std::atomic<uint64_t> cellsServed{0};
    std::atomic<uint64_t> cacheHits{0};

    /** Serializes same-spec submissions (one directory = one
     *  journal writer); distinct specs proceed concurrently. */
    std::mutex dirLocksMutex;
    std::map<std::string, std::unique_ptr<std::mutex>> dirLocks;

    std::mutex &lockFor(const std::string &dir)
    {
        std::lock_guard<std::mutex> l(dirLocksMutex);
        auto it = dirLocks.find(dir);
        if (it == dirLocks.end()) {
            it = dirLocks
                     .emplace(dir, std::make_unique<std::mutex>())
                     .first;
        }
        return *it->second;
    }
};

/** One event line: an open writer the handler fills, sent on
 *  finish(). Every event carries the schema tag. */
class EventLine
{
  public:
    explicit EventLine(const char *event)
    {
        w_.beginObject();
        w_.str("schema", kServerSchema);
        w_.str("event", event);
    }

    sim::SnapshotWriter &w() { return w_; }

    bool sendTo(cli::LineSocket &sock)
    {
        w_.endObject();
        return sock.sendLine(w_.text());
    }

  private:
    sim::SnapshotWriter w_;
};

bool
sendError(cli::LineSocket &sock, const std::string &message)
{
    EventLine e("error");
    e.w().str("message", message);
    return e.sendTo(sock);
}

// --------------------------------------------------------------------
// campaign
// --------------------------------------------------------------------

void
handleCampaign(ServerState &state, cli::LineSocket &sock,
               const sim::JsonValue &request)
{
    const sim::JsonValue *spec_text = request.find("spec");
    if (!spec_text ||
        spec_text->kind != sim::JsonValue::Kind::String) {
        sendError(sock, "campaign needs a 'spec' string (canonical "
                        "CampaignSpec JSON)");
        return;
    }
    sim::CampaignSpec spec;
    try {
        spec = sim::parseSpec(spec_text->text);
    } catch (const sim::SimError &err) {
        sendError(sock, std::string("spec unparsable: ") +
                            err.what());
        return;
    }
    if (spec.isolate) {
        sendError(sock,
                  "isolate specs are not served (fork from a "
                  "multithreaded daemon); use ssmt_campaign run "
                  "--isolate locally");
        return;
    }
    const sim::JsonValue *stream = request.find("stream");
    bool want_stream =
        !stream || stream->kind != sim::JsonValue::Kind::Bool ||
        stream->boolean;

    // The canonical spec text is the campaign identity: re-serialize
    // so two spellings of the same spec share one directory.
    const std::string canonical = sim::specJson(spec);
    const std::string dir =
        state.root + "/c-" + hex16(fnv1a(canonical));

    state.campaignsTotal.fetch_add(1, std::memory_order_relaxed);
    state.campaignsActive.fetch_add(1, std::memory_order_relaxed);
    // A vanished client must not abort the campaign: keep running to
    // durable completion, just stop streaming.
    std::atomic<bool> peer_alive{true};
    auto send = [&](EventLine &e) {
        if (peer_alive.load(std::memory_order_relaxed) &&
            !e.sendTo(sock))
            peer_alive.store(false, std::memory_order_relaxed);
    };

    sim::CampaignOptions copts;
    copts.jobs = state.jobs;
    if (want_stream) {
        copts.log = [&](const std::string &line) {
            EventLine e("progress");
            e.w().str("line", line);
            send(e);
        };
    }
    std::mutex cell_mutex;  // onCell fires from pool workers
    copts.onCell = [&](const sim::CampaignCell &cell,
                       const std::string &key,
                       const sim::BatchResult &result, bool cached) {
        state.cellsServed.fetch_add(1, std::memory_order_relaxed);
        if (cached)
            state.cacheHits.fetch_add(1, std::memory_order_relaxed);
        if (!want_stream)
            return;
        std::lock_guard<std::mutex> l(cell_mutex);
        EventLine e("cell");
        e.w().str("cell", cell.name);
        e.w().str("key", key);
        e.w().boolean("cached", cached);
        e.w().boolean("ok", result.ok());
        e.w().str("error", result.ok()
                               ? std::string()
                               : sim::errorCodeName(result.errorCode));
        // The full canonical cell document, series included — the
        // same ssmt-job-result-v1 bytes the store holds.
        e.w().str("doc", sim::encodeJobResult(result, "", true));
        send(e);
    };

    try {
        std::lock_guard<std::mutex> dir_lock(state.lockFor(dir));
        sim::CampaignOutcome outcome =
            sim::runCampaign(spec, dir, copts);

        if (outcome.completed) {
            EventLine e("manifest");
            e.w().str("path", outcome.manifestPath);
            e.w().str("text",
                      sim::readFileOrEmpty(outcome.manifestPath));
            send(e);
        }
        EventLine done("done");
        done.w().boolean("ok",
                         outcome.completed && outcome.failed == 0);
        done.w().u64("cells", outcome.cells.size());
        done.w().u64("cacheHits", outcome.cacheHits);
        done.w().u64("executed", outcome.executed);
        done.w().u64("failed", outcome.failed);
        done.w().str("dir", dir);
        send(done);
    } catch (const std::exception &err) {
        if (peer_alive.load(std::memory_order_relaxed))
            sendError(sock, err.what());
    }
    state.campaignsActive.fetch_sub(1, std::memory_order_relaxed);
}

// --------------------------------------------------------------------
// batch
// --------------------------------------------------------------------

/** A batch request cell: workload + mode under the golden or default
 *  config — the shapes ssmt_verify_golden and the benches need. */
bool
parseBatchCell(const sim::JsonValue &entry, sim::BatchJob *job,
               std::string *err)
{
    std::string workload = entry.str("workload");
    if (workload.empty()) {
        *err = "batch cell needs a 'workload'";
        return false;
    }
    bool known = false;
    for (const auto &info : workloads::allWorkloads())
        known = known || info.name == workload;
    if (!known) {
        *err = "unknown workload '" + workload + "'";
        return false;
    }
    sim::Mode mode;
    if (!sim::parseMode(entry.str("mode"), &mode)) {
        *err = "batch cell needs a valid 'mode'";
        return false;
    }
    std::string config_name = entry.str("config");
    if (config_name.empty())
        config_name = "golden";
    sim::MachineConfig config;
    if (config_name == "golden") {
        config = sim::goldenMachineConfig();
    } else if (config_name == "default") {
        config = sim::MachineConfig{};
    } else {
        *err = "unknown config '" + config_name +
               "' (accepted: golden, default)";
        return false;
    }
    config.mode = mode;
    if (const sim::JsonValue *max_insts = entry.find("maxInsts"))
        if (max_insts->isInteger && max_insts->integer > 0)
            config.maxInsts = max_insts->integer;
    if (const sim::JsonValue *sample = entry.find("sampleInterval"))
        if (sample->isInteger)
            config.sampleInterval = sample->integer;

    workloads::WorkloadParams params;
    if (const sim::JsonValue *scale = entry.find("scale"))
        if (scale->isInteger && scale->integer > 0)
            params.scale = scale->integer;

    job->name = entry.str("name");
    if (job->name.empty())
        job->name = workload + "/" + sim::modeName(mode);
    job->program = workloads::makeWorkload(workload, params);
    job->config = config;
    return true;
}

void
handleBatch(ServerState &state, cli::LineSocket &sock,
            const sim::JsonValue &request)
{
    const sim::JsonValue *cells = request.find("cells");
    if (!cells || cells->kind != sim::JsonValue::Kind::Array ||
        cells->items.empty()) {
        sendError(sock, "batch needs a non-empty 'cells' array");
        return;
    }
    std::vector<sim::BatchJob> batch(cells->items.size());
    for (size_t i = 0; i < cells->items.size(); i++) {
        std::string err;
        if (!parseBatchCell(cells->items[i], &batch[i], &err)) {
            sendError(sock, "cell " + std::to_string(i) + ": " + err);
            return;
        }
    }

    state.batchesTotal.fetch_add(1, std::memory_order_relaxed);
    std::atomic<bool> peer_alive{true};
    std::mutex send_mutex;  // the hook fires from pool workers
    sim::BatchRunner runner(state.jobs);
    std::vector<sim::BatchResult> results = runner.run(
        batch, sim::BatchPolicy{},
        [&](size_t i, const sim::BatchResult &result) {
            state.cellsServed.fetch_add(1,
                                        std::memory_order_relaxed);
            std::lock_guard<std::mutex> l(send_mutex);
            if (!peer_alive.load(std::memory_order_relaxed))
                return;
            // Streamed in completion order; 'index' keys the slot,
            // so the client reassembles deterministically.
            EventLine e("job");
            e.w().u64("index", i);
            e.w().str("name", batch[i].name);
            e.w().boolean("ok", result.ok());
            e.w().str("doc", sim::encodeJobResult(result, "", true));
            if (!e.sendTo(sock))
                peer_alive.store(false, std::memory_order_relaxed);
        });

    size_t failed = 0;
    for (const sim::BatchResult &result : results)
        failed += result.ok() ? 0 : 1;
    EventLine done("done");
    done.w().boolean("ok", failed == 0);
    done.w().u64("cells", results.size());
    done.w().u64("failed", failed);
    if (peer_alive.load(std::memory_order_relaxed))
        done.sendTo(sock);
}

// --------------------------------------------------------------------
// connection loop
// --------------------------------------------------------------------

void
handleStatus(ServerState &state, cli::LineSocket &sock)
{
    EventLine e("status");
    e.w().u64("workers", sim::TaskRuntime::shared().workers());
    e.w().u64("campaignsActive", state.campaignsActive.load());
    e.w().u64("campaignsTotal", state.campaignsTotal.load());
    e.w().u64("batchesTotal", state.batchesTotal.load());
    e.w().u64("cellsServed", state.cellsServed.load());
    e.w().u64("cacheHits", state.cacheHits.load());
    e.sendTo(sock);
}

void
serveConnection(ServerState &state, int fd)
{
    cli::LineSocket sock(fd);
    std::string line;
    while (sock.recvLine(&line)) {
        if (line.empty())
            continue;
        sim::JsonValue request;
        std::string err;
        if (!sim::parseJson(line, request, &err)) {
            if (!sendError(sock, "request unparsable: " + err))
                break;
            continue;
        }
        if (request.str("schema") != kServerSchema) {
            if (!sendError(sock, std::string("expected schema ") +
                                     kServerSchema))
                break;
            continue;
        }
        std::string cmd = request.str("cmd");
        if (cmd == "ping") {
            EventLine e("pong");
            if (!e.sendTo(sock))
                break;
        } else if (cmd == "campaign") {
            handleCampaign(state, sock, request);
        } else if (cmd == "batch") {
            handleBatch(state, sock, request);
        } else if (cmd == "status") {
            handleStatus(state, sock);
        } else if (cmd == "shutdown") {
            EventLine e("done");
            e.w().boolean("ok", true);
            e.sendTo(sock);
            g_stop.store(true, std::memory_order_relaxed);
            if (g_listen_fd >= 0)
                ::shutdown(g_listen_fd, SHUT_RDWR);
            break;
        } else {
            if (!sendError(sock, "unknown cmd '" + cmd + "'"))
                break;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ssmt::detail::setFatalThrows(true);
    cli::ArgParser args(argc, argv, kUsage,
                        {{"--socket", nullptr, true},
                         {"--root", nullptr, true},
                         {"--jobs", nullptr, true}});
    std::string socket_path = args.str("--socket");
    if (socket_path.empty())
        args.fail("--socket PATH is required");

    ServerState state;
    state.root = args.str("--root", "ssmt-server-root");
    state.jobs = cli::jobsFlag(args, "--jobs");
    if (!sim::ensureDir(state.root)) {
        std::fprintf(stderr,
                     "ssmt_server: cannot create root '%s'\n",
                     state.root.c_str());
        return 1;
    }

    // Start the pool up-front at the requested width so status
    // reports it and the first request pays no ramp-up.
    sim::TaskRuntime::shared().ensureWorkers(
        sim::resolveJobs(state.jobs));

    struct sockaddr_un addr;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "ssmt_server: socket path too long\n");
        return 1;
    }
    // Replace a stale socket file (a previous daemon that died);
    // refuse anything that isn't a socket.
    struct stat st;
    if (::lstat(socket_path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode)) {
            std::fprintf(stderr,
                         "ssmt_server: '%s' exists and is not a "
                         "socket\n",
                         socket_path.c_str());
            return 1;
        }
        ::unlink(socket_path.c_str());
    }

    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        std::perror("ssmt_server: socket");
        return 1;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    if (::bind(listen_fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 64) != 0) {
        std::perror("ssmt_server: bind/listen");
        ::close(listen_fd);
        return 1;
    }
    g_listen_fd = listen_fd;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::fprintf(stderr,
                 "[ssmt_server] listening on %s (root %s, %u "
                 "workers)\n",
                 socket_path.c_str(), state.root.c_str(),
                 sim::TaskRuntime::shared().workers());

    std::vector<std::thread> connections;
    while (!g_stop.load(std::memory_order_relaxed)) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR ||
                g_stop.load(std::memory_order_relaxed))
                break;
            continue;
        }
        connections.emplace_back(
            [&state, fd] { serveConnection(state, fd); });
    }

    for (std::thread &t : connections)
        t.join();
    ::unlink(socket_path.c_str());
    std::fprintf(stderr, "[ssmt_server] stopped (%llu campaigns, "
                         "%llu cells served, %llu cache hits)\n",
                 static_cast<unsigned long long>(
                     state.campaignsTotal.load()),
                 static_cast<unsigned long long>(
                     state.cellsServed.load()),
                 static_cast<unsigned long long>(
                     state.cacheHits.load()));
    return 0;
}
