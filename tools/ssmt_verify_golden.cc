/**
 * @file
 * verify-golden driver: replay every workload under the pinned
 * golden MachineConfig through sim::BatchRunner and fail on any
 * counter drift against the committed golden/<workload>.json
 * snapshots that is not covered by the allowlist.
 *
 * Invariant checking rides along for free: runProgram/BatchRunner
 * panic with the violated relation's name on any inconsistent run,
 * so a passing verify-golden certifies both "same numbers as the
 * committed snapshots" and "zero invariant violations".
 *
 * --differential additionally runs each workload under the baseline
 * and the two oracle configurations and asserts the cross-config
 * relations the paper implies: the instruction stream (and therefore
 * branch and hardware-misprediction counts) is mode-invariant, a
 * full oracle leaves zero used mispredictions, and used-prediction
 * accuracy is monotone — oracle >= realistic >= baseline.
 *
 * --server SOCK executes the batches on a running ssmt_server
 * instead of in-process: the suite travels as a ssmt-server-v1 batch
 * request, results come back as ssmt-job-result-v1 documents and
 * decode against the locally-built golden geometry, and the
 * comparison logic below never learns which side simulated. Since
 * both paths are bit-deterministic, --server passing certifies the
 * daemon's results are byte-faithful to local execution.
 *
 * Usage:
 *   ssmt_verify_golden [--golden-dir D] [--jobs N] [--update]
 *                      [--allowlist F] [--workloads a,b,...]
 *                      [--differential] [--server SOCK]
 *
 * Exit status: 0 clean, 1 drift/relation failure or any errored
 * batch job (all failures are reported, not just the first), 2 bad
 * usage or missing snapshots.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/invariants.hh"
#include "sim/job_codec.hh"
#include "sim/json_text.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

struct Options
{
    std::string goldenDir = "golden";
    std::string allowlistPath;      // default: <goldenDir>/ALLOWLIST
    std::vector<std::string> workloads;
    std::string server;     // non-empty: run batches on a daemon
    unsigned jobs = 0;
    bool update = false;
    bool differential = false;
};

const char kUsage[] =
    "usage: ssmt_verify_golden [--golden-dir D] [--jobs N]"
    " [--update]\n"
    "          [--allowlist F] [--workloads a,b,...]"
    " [--differential]\n"
    "          [--server SOCK] [--list-workloads]\n";

Options
parseOptions(int argc, char **argv)
{
    cli::ArgParser args(
        argc, argv, kUsage,
        {{"--golden-dir", nullptr, true},
         {"--allowlist", nullptr, true},
         {"--workloads", nullptr, true},
         {"--jobs", nullptr, true},
         {"--server", nullptr, true},
         {"--update"},
         {"--differential"}});
    if (!args.positionals().empty())
        args.fail("unexpected argument '" + args.positionals()[0] +
                  "'");
    Options opt;
    opt.goldenDir = args.str("--golden-dir", opt.goldenDir);
    opt.allowlistPath = args.str("--allowlist");
    if (args.has("--workloads"))
        opt.workloads = cli::splitCommas(args.str("--workloads"));
    if (args.has("--jobs")) {
        uint64_t jobs = args.u64("--jobs");
        if (jobs == 0)
            args.fail("--jobs must be >= 1");
        opt.jobs = static_cast<unsigned>(jobs);
    }
    opt.server = args.str("--server");
    opt.update = args.has("--update");
    opt.differential = args.has("--differential");
    if (!opt.server.empty() && opt.update)
        args.fail("--update runs locally; drop --server");
    if (opt.allowlistPath.empty())
        opt.allowlistPath = opt.goldenDir + "/ALLOWLIST";
    return opt;
}

/**
 * Execute @p batch on the ssmt_server at @p socket_path. Every job
 * here is the pinned golden config plus a mode, so each cell travels
 * as {workload, mode, config:"golden"} and the returned
 * ssmt-job-result-v1 doc decodes against the job's own config (the
 * geometry never travels — both sides derive it from "golden").
 * @return false (after reporting) on any transport/protocol failure;
 * decoded results land in @p results in batch order.
 */
bool
runServerBatch(const std::string &socket_path,
               const std::vector<sim::BatchJob> &batch,
               std::vector<sim::BatchResult> *results)
{
    cli::LineSocket sock;
    if (!sock.connectTo(socket_path)) {
        std::fprintf(stderr,
                     "[verify-golden] cannot connect to server at "
                     "'%s'\n",
                     socket_path.c_str());
        return false;
    }
    sim::SnapshotWriter req;
    req.beginObject();
    req.str("schema", "ssmt-server-v1");
    req.str("cmd", "batch");
    req.beginArray("cells");
    for (const sim::BatchJob &job : batch) {
        // job.name is "<workload>" or "<workload>/<suffix>"; the
        // server rebuilds the program from the workload registry.
        std::string workload = job.name.substr(0, job.name.find('/'));
        req.beginObject();
        req.str("workload", workload);
        req.str("mode", sim::modeName(job.config.mode));
        req.str("config", "golden");
        req.str("name", job.name);
        req.endObject();
    }
    req.endArray();
    req.endObject();
    if (!sock.sendLine(req.text())) {
        std::fprintf(stderr,
                     "[verify-golden] server send failed\n");
        return false;
    }

    results->assign(batch.size(), sim::BatchResult{});
    std::vector<char> got(batch.size(), 0);
    std::string line;
    while (sock.recvLine(&line)) {
        sim::JsonValue event;
        if (!sim::parseJson(line, event)) {
            std::fprintf(stderr,
                         "[verify-golden] unparsable server event\n");
            return false;
        }
        std::string kind = event.str("event");
        if (kind == "error") {
            std::fprintf(stderr, "[verify-golden] server: %s\n",
                         event.str("message").c_str());
            return false;
        }
        if (kind == "job") {
            size_t index =
                static_cast<size_t>(event.u64("index", batch.size()));
            if (index >= batch.size()) {
                std::fprintf(stderr,
                             "[verify-golden] job index out of "
                             "range\n");
                return false;
            }
            std::string checkpoint;
            bool final_attempt = false;
            try {
                sim::decodeJobResult(event.str("doc"),
                                     batch[index].config,
                                     &(*results)[index], &checkpoint,
                                     &final_attempt);
            } catch (const sim::SimError &e) {
                std::fprintf(stderr,
                             "[verify-golden] cell %s: undecodable "
                             "result doc: %s\n",
                             batch[index].name.c_str(), e.what());
                return false;
            }
            got[index] = 1;
            continue;
        }
        if (kind == "done") {
            for (size_t i = 0; i < batch.size(); i++) {
                if (!got[i]) {
                    std::fprintf(stderr,
                                 "[verify-golden] server never "
                                 "returned cell %zu (%s)\n",
                                 i, batch[i].name.c_str());
                    return false;
                }
            }
            return true;
        }
    }
    std::fprintf(stderr,
                 "[verify-golden] server closed the connection "
                 "mid-batch\n");
    return false;
}

/**
 * Cross-config relations checked by --differential. Each failure is
 * reported as "<workload>: <relation>".
 */
int
checkDifferential(const std::string &name, const sim::Stats &base,
                  const sim::Stats &oracle, const sim::Stats &micro,
                  const sim::Stats &oracleAll)
{
    int failures = 0;
    auto fail = [&](const std::string &what) {
        std::fprintf(stderr, "DIFFERENTIAL FAIL %s: %s\n",
                     name.c_str(), what.c_str());
        failures++;
    };

    // The machine fetches only correct-path instructions, so the
    // instruction stream — and everything the hardware predictor
    // sees — is identical in every mode.
    const sim::Stats *all[] = {&oracle, &micro, &oracleAll};
    for (const sim::Stats *s : all) {
        if (s->retiredInsts != base.retiredInsts)
            fail("retiredInsts differs from baseline across modes");
        if (s->condBranches != base.condBranches ||
            s->indirectBranches != base.indirectBranches)
            fail("branch counts differ from baseline across modes");
        if (s->condHwMispredicts != base.condHwMispredicts ||
            s->indirectHwMispredicts != base.indirectHwMispredicts)
            fail("hw mispredict counts differ from baseline "
                 "across modes");
    }

    // A full oracle never uses a wrong prediction.
    if (oracleAll.usedMispredicts != 0)
        fail("OracleAllBranches left usedMispredicts = " +
             std::to_string(oracleAll.usedMispredicts));

    // Used-prediction accuracy is monotone: oracle >= realistic >=
    // baseline (fewer used mispredictions over the same branches).
    if (oracle.usedMispredicts > base.usedMispredicts)
        fail("OracleDifficultPath used more mispredictions than "
             "baseline (" + std::to_string(oracle.usedMispredicts) +
             " > " + std::to_string(base.usedMispredicts) + ")");
    if (micro.usedMispredicts > base.usedMispredicts)
        fail("Microthread used more mispredictions than baseline (" +
             std::to_string(micro.usedMispredicts) + " > " +
             std::to_string(base.usedMispredicts) + ")");
    if (oracleAll.usedMispredicts > oracle.usedMispredicts)
        fail("full oracle worse than difficult-path oracle");

    // In baseline mode the used prediction *is* the hardware
    // prediction, so the counters must agree exactly.
    if (base.usedMispredicts !=
        base.condHwMispredicts + base.indirectHwMispredicts)
        fail("baseline usedMispredicts != hw mispredicts (" +
             std::to_string(base.usedMispredicts) + " != " +
             std::to_string(base.condHwMispredicts +
                            base.indirectHwMispredicts) + ")");
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);

    std::vector<workloads::WorkloadInfo> suite;
    if (opt.workloads.empty())
        suite = workloads::allWorkloads();
    else
        suite = cli::resolveWorkloads(opt.workloads, argv[0]);

    bool allowlistExisted = false;
    sim::DriftAllowlist allowlist = sim::DriftAllowlist::load(
        opt.allowlistPath, &allowlistExisted);

    // ---- Replay the suite under the pinned golden config ----
    // BatchRunner/runProgram panic with the violated relation on any
    // invariant inconsistency, so results coming back means every
    // run passed the StatsChecker and structural checks.
    sim::MachineConfig golden_cfg = sim::goldenMachineConfig();
    std::vector<sim::BatchJob> batch;
    batch.reserve(suite.size());
    for (const auto &info : suite)
        batch.push_back({info.name, info.make({}), golden_cfg});

    sim::BatchRunner runner(opt.jobs);
    std::vector<sim::BatchResult> results;
    if (opt.server.empty())
        results = runner.run(batch);
    else if (!runServerBatch(opt.server, batch, &results))
        return 2;
    // Collect every failed job before bailing so one bad workload
    // does not mask the rest of the report.
    std::string failed_jobs =
        sim::BatchRunner::failureSummary(batch, results);
    if (!failed_jobs.empty()) {
        std::fputs(failed_jobs.c_str(), stderr);
        std::fprintf(stderr,
                     "[verify-golden] FAILED: batch jobs errored "
                     "before any counter could be compared\n");
        return 1;
    }

    if (opt.update) {
        for (size_t i = 0; i < suite.size(); i++) {
            sim::GoldenRun run{suite[i].name, sim::kGoldenConfigName,
                               results[i].stats};
            std::string path =
                sim::writeGoldenFile(opt.goldenDir, run);
            if (path.empty()) {
                std::fprintf(stderr,
                             "cannot write golden snapshot for %s "
                             "under %s\n",
                             suite[i].name.c_str(),
                             opt.goldenDir.c_str());
                return 2;
            }
            std::printf("updated %s\n", path.c_str());
        }
        std::printf("regenerated %zu golden snapshots (config %s)\n",
                    suite.size(), sim::kGoldenConfigName);
        return 0;
    }

    // ---- Diff against the committed snapshots ----
    int drifted_counters = 0;
    int allowed_counters = 0;
    int missing = 0;
    for (size_t i = 0; i < suite.size(); i++) {
        const std::string &name = suite[i].name;
        std::string path =
            opt.goldenDir + "/" + sim::goldenFileName(name);
        std::string text = cli::readFile(path);
        if (text.empty()) {
            std::fprintf(stderr,
                         "missing golden snapshot %s (run "
                         "ssmt_verify_golden --update)\n",
                         path.c_str());
            missing++;
            continue;
        }
        sim::GoldenRun want;
        std::string err;
        if (!sim::parseGolden(text, want, &err)) {
            std::fprintf(stderr, "cannot parse %s: %s\n",
                         path.c_str(), err.c_str());
            missing++;
            continue;
        }
        if (want.config != sim::kGoldenConfigName) {
            std::fprintf(stderr,
                         "%s pinned to config '%s' but this binary "
                         "verifies '%s' — regenerate\n",
                         path.c_str(), want.config.c_str(),
                         sim::kGoldenConfigName);
            missing++;
            continue;
        }
        std::vector<sim::CounterDrift> drifts =
            sim::diffStats(want.stats, results[i].stats);
        for (const sim::CounterDrift &d : drifts) {
            bool allowed = allowlist.allows(name, d.counter);
            std::fprintf(
                stderr,
                "%s %s: %s %llu -> %llu (%+.2f%%)\n",
                allowed ? "allowed drift" : "DRIFT", name.c_str(),
                d.counter.c_str(),
                static_cast<unsigned long long>(d.golden),
                static_cast<unsigned long long>(d.candidate),
                100.0 * d.relative());
            if (allowed)
                allowed_counters++;
            else
                drifted_counters++;
        }
        if (drifts.empty()) {
            // Counters agree; the canonical serialization must too.
            sim::GoldenRun now{name, sim::kGoldenConfigName,
                               results[i].stats};
            if (sim::goldenJson(now) != text) {
                std::fprintf(stderr,
                             "DRIFT %s: snapshot is not the "
                             "canonical serialization — regenerate\n",
                             name.c_str());
                drifted_counters++;
            }
        }
    }

    // ---- Cross-config differential checks ----
    int differential_failures = 0;
    if (opt.differential) {
        sim::MachineConfig base_cfg = golden_cfg;
        base_cfg.mode = sim::Mode::Baseline;
        sim::MachineConfig oracle_cfg = golden_cfg;
        oracle_cfg.mode = sim::Mode::OracleDifficultPath;
        sim::MachineConfig oracle_all_cfg = golden_cfg;
        oracle_all_cfg.mode = sim::Mode::OracleAllBranches;

        std::vector<sim::BatchJob> diff_batch;
        diff_batch.reserve(suite.size() * 3);
        for (const auto &info : suite) {
            isa::Program prog = info.make({});
            diff_batch.push_back({info.name + "/baseline", prog,
                                  base_cfg});
            diff_batch.push_back({info.name + "/oracle", prog,
                                  oracle_cfg});
            diff_batch.push_back({info.name + "/oracle-all", prog,
                                  oracle_all_cfg});
        }
        std::vector<sim::BatchResult> diff_results;
        if (opt.server.empty())
            diff_results = runner.run(diff_batch);
        else if (!runServerBatch(opt.server, diff_batch,
                                 &diff_results))
            return 2;
        std::string failed_diff = sim::BatchRunner::failureSummary(
            diff_batch, diff_results);
        if (!failed_diff.empty()) {
            std::fputs(failed_diff.c_str(), stderr);
            std::fprintf(stderr,
                         "[verify-golden] FAILED: differential batch "
                         "jobs errored\n");
            return 1;
        }
        for (size_t i = 0; i < suite.size(); i++) {
            differential_failures += checkDifferential(
                suite[i].name, diff_results[3 * i].stats,
                diff_results[3 * i + 1].stats, results[i].stats,
                diff_results[3 * i + 2].stats);
        }
    }

    std::printf(
        "[verify-golden] %zu workloads, config %s: %d drifted "
        "counter%s (%d allowlisted), %d missing snapshot%s%s\n",
        suite.size(), sim::kGoldenConfigName, drifted_counters,
        drifted_counters == 1 ? "" : "s", allowed_counters, missing,
        missing == 1 ? "" : "s",
        opt.differential
            ? (", differential " +
               std::string(differential_failures ? "FAILED" : "ok"))
                  .c_str()
            : "");
    if (!allowlistExisted && !allowlist.entries.empty())
        std::fprintf(stderr, "note: allowlist %s unreadable\n",
                     opt.allowlistPath.c_str());
    if (missing)
        return 2;
    return drifted_counters || differential_failures ? 1 : 0;
}

