/**
 * @file
 * ssmt_faultcamp: seeded fault-injection campaigns against the
 * speculative helper state.
 *
 * For every (workload, fault site) cell the tool runs the workload
 * under the golden microthread configuration with a seeded FaultPlan
 * and asserts the central robustness property of the mechanism: the
 * architectural counters (retired instructions, branch and
 * hardware-misprediction counts) are byte-identical to the fault-free
 * run of the same workload — corrupting the Prediction Cache, Path
 * Cache, MicroRAM or the spawn machinery may cost cycles but must
 * never steer the committed stream. With --golden-dir the clean runs
 * are additionally pinned against the committed golden/ snapshots.
 *
 * Usage:
 *   ssmt_faultcamp [--workloads a,b,...|all] [--site S|all]
 *                  [--count N] [--seed S] [--period P] [--jobs N]
 *                  [--budget CYCLES] [--golden-dir D] [--out FILE]
 *
 * Output: an `ssmt-faultcamp-v1` JSON report (stdout or --out) with
 * one record per cell: faults armed/injected, architectural match,
 * cycle delta, and any per-job error captured by the BatchRunner.
 *
 * Exit status: 0 all cells architecturally identical and error-free,
 * 1 any mismatch/failed cell, 2 bad usage or unreadable snapshots.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "sim/batch_runner.hh"
#include "sim/faultinject.hh"
#include "sim/golden.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

struct Options
{
    std::vector<std::string> workloads = {"comp", "go", "li",
                                          "mcf_2k", "parser_2k"};
    std::vector<sim::FaultSite> sites;  // empty = all
    uint64_t count = 10;
    uint64_t seed = 12345;
    uint64_t period = 200;
    uint64_t budget = 0;
    unsigned jobs = 0;
    std::string goldenDir;
    std::string outPath;
};

std::string
usageText()
{
    std::string text =
        "usage: ssmt_faultcamp [--workloads a,b,...|all]"
        " [--site S|all]\n"
        "          [--count N] [--seed S] [--period P] [--jobs N]\n"
        "          [--budget CYCLES] [--golden-dir D] [--out FILE]\n"
        "          [--list-workloads]\n"
        "fault sites:";
    for (sim::FaultSite site : sim::allFaultSites())
        text += std::string(" ") + sim::faultSiteName(site);
    text += "\n";
    return text;
}

Options
parseOptions(int argc, char **argv)
{
    cli::ArgParser args(argc, argv, usageText(),
                        {{"--workloads", nullptr, true},
                         {"--site", nullptr, true},
                         {"--count", nullptr, true},
                         {"--seed", nullptr, true},
                         {"--period", nullptr, true},
                         {"--budget", nullptr, true},
                         {"--jobs", nullptr, true},
                         {"--golden-dir", nullptr, true},
                         {"--out", nullptr, true}});
    if (!args.positionals().empty())
        args.fail("unexpected argument '" + args.positionals()[0] +
                  "'");
    Options opt;
    if (args.has("--workloads"))
        opt.workloads =
            cli::expandWorkloadList(args.str("--workloads"));
    if (args.has("--site")) {
        std::string text = args.str("--site");
        if (text == "all") {
            opt.sites.clear();
        } else {
            for (const std::string &name : cli::splitCommas(text)) {
                sim::FaultSite site;
                if (!sim::parseFaultSite(name, &site) ||
                    site == sim::FaultSite::None)
                    args.fail("unknown fault site '" + name + "'");
                opt.sites.push_back(site);
            }
        }
    }
    opt.count = args.u64("--count", opt.count);
    opt.seed = args.u64("--seed", opt.seed);
    opt.period = args.u64("--period", opt.period);
    opt.budget = args.u64("--budget", opt.budget);
    opt.jobs = static_cast<unsigned>(args.u64("--jobs", opt.jobs));
    opt.goldenDir = args.str("--golden-dir");
    opt.outPath = args.str("--out");
    if (opt.sites.empty())
        opt.sites = sim::allFaultSites();
    if (opt.seed == 0)
        opt.seed = 1;
    return opt;
}

/** splitmix64-style mix for per-cell fault seeds. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x ? x : 1;
}

struct Cell
{
    std::string workload;
    sim::FaultSite site;    // None = the clean reference run
    uint64_t seed = 0;
};

int
runCampaign(const Options &opt)
{
    std::vector<workloads::WorkloadInfo> suite;
    for (const std::string &name : opt.workloads) {
        bool found = false;
        for (const auto &info : workloads::allWorkloads()) {
            if (info.name == name) {
                suite.push_back(info);
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         name.c_str());
            return 2;
        }
    }

    // One clean reference cell per workload, then one faulted cell
    // per (workload, site).
    sim::MachineConfig clean_cfg = sim::goldenMachineConfig();
    std::vector<Cell> cells;
    std::vector<sim::BatchJob> batch;
    for (size_t w = 0; w < suite.size(); w++) {
        isa::Program prog = suite[w].make({});
        cells.push_back({suite[w].name, sim::FaultSite::None, 0});
        batch.push_back({suite[w].name + "/clean", prog, clean_cfg});
        for (size_t s = 0; s < opt.sites.size(); s++) {
            sim::MachineConfig cfg = clean_cfg;
            cfg.faults.site = opt.sites[s];
            cfg.faults.count = opt.count;
            cfg.faults.period = opt.period;
            cfg.faults.seed =
                mix64(opt.seed ^ (w * 1000003ull + s * 7919ull + 1));
            cells.push_back(
                {suite[w].name, opt.sites[s], cfg.faults.seed});
            batch.push_back({suite[w].name + "/" +
                                 sim::faultSiteName(opt.sites[s]),
                             prog, cfg});
        }
    }

    sim::BatchPolicy policy;
    policy.cycleBudget = opt.budget;
    std::vector<sim::BatchResult> results =
        sim::BatchRunner(opt.jobs).run(batch, policy);

    // Index the clean runs and check them against golden/ if asked.
    size_t stride = 1 + opt.sites.size();
    int failures = 0;
    std::vector<sim::ArchSignature> reference(suite.size());
    for (size_t w = 0; w < suite.size(); w++) {
        const sim::BatchResult &clean = results[w * stride];
        if (!clean.ok()) {
            std::fprintf(stderr, "clean run %s failed: %s\n",
                         suite[w].name.c_str(), clean.error.c_str());
            failures++;
            continue;
        }
        reference[w] = sim::ArchSignature::of(clean.stats);
        if (opt.goldenDir.empty())
            continue;
        std::string path = opt.goldenDir + "/" +
                           sim::goldenFileName(suite[w].name);
        std::string text = cli::readFile(path);
        sim::GoldenRun want;
        std::string err;
        if (text.empty() || !sim::parseGolden(text, want, &err)) {
            std::fprintf(stderr, "cannot read golden snapshot %s%s%s\n",
                         path.c_str(), err.empty() ? "" : ": ",
                         err.c_str());
            return 2;
        }
        sim::ArchSignature golden_sig =
            sim::ArchSignature::of(want.stats);
        std::string diff = reference[w].diff(golden_sig);
        if (!diff.empty()) {
            std::fprintf(stderr,
                         "GOLDEN MISMATCH %s: clean run vs %s: %s\n",
                         suite[w].name.c_str(), path.c_str(),
                         diff.c_str());
            failures++;
        }
    }

    // ---- Per-cell verdicts + report ----
    std::string json;
    json += "{\n  \"schema\": \"ssmt-faultcamp-v1\",\n";
    json += "  \"seed\": " + std::to_string(opt.seed) + ",\n";
    json += "  \"count_per_cell\": " + std::to_string(opt.count) +
            ",\n  \"cells\": [\n";

    uint64_t total_injected = 0;
    uint64_t total_armed = 0;
    size_t faulted_cells = 0;
    size_t arch_mismatches = 0;
    size_t errored_cells = 0;
    bool first = true;
    for (size_t i = 0; i < cells.size(); i++) {
        const Cell &cell = cells[i];
        if (cell.site == sim::FaultSite::None)
            continue;
        const sim::BatchResult &result = results[i];
        const sim::BatchResult &clean =
            results[(i / stride) * stride];
        faulted_cells++;

        bool arch_match = false;
        if (result.ok() && clean.ok()) {
            sim::ArchSignature sig =
                sim::ArchSignature::of(result.stats);
            std::string diff =
                sig.diff(reference[i / stride]);
            arch_match = diff.empty();
            if (!arch_match) {
                std::fprintf(stderr, "ARCH MISMATCH %s: %s\n",
                             batch[i].name.c_str(), diff.c_str());
                arch_mismatches++;
                failures++;
            }
        } else if (!result.ok()) {
            std::fprintf(stderr, "cell %s failed: %s\n",
                         batch[i].name.c_str(), result.error.c_str());
            errored_cells++;
            failures++;
        }
        total_injected += result.faults.injected;
        total_armed += result.faults.armed;

        int64_t cycle_delta =
            result.ok() && clean.ok()
                ? static_cast<int64_t>(result.stats.cycles) -
                      static_cast<int64_t>(clean.stats.cycles)
                : 0;
        json += first ? "" : ",\n";
        first = false;
        json += "    {\"workload\": \"" + cell.workload +
                "\", \"site\": \"" + sim::faultSiteName(cell.site) +
                "\", \"seed\": " + std::to_string(cell.seed) +
                ", \"armed\": " +
                std::to_string(result.faults.armed) +
                ", \"injected\": " +
                std::to_string(result.faults.injected) +
                ", \"no_target\": " +
                std::to_string(result.faults.noTarget) +
                ", \"arch_match\": " +
                (arch_match ? "true" : "false") +
                ", \"cycle_delta\": " + std::to_string(cycle_delta) +
                ", \"attempts\": " + std::to_string(result.attempts) +
                ", \"error\": \"" +
                (result.ok() ? "" : sim::errorCodeName(
                                        result.errorCode)) +
                "\"}";
    }
    json += "\n  ],\n";
    json += "  \"summary\": {\"workloads\": " +
            std::to_string(suite.size()) +
            ", \"faulted_cells\": " + std::to_string(faulted_cells) +
            ", \"faults_injected\": " +
            std::to_string(total_injected) +
            ", \"faults_armed\": " + std::to_string(total_armed) +
            ", \"arch_mismatches\": " +
            std::to_string(arch_mismatches) +
            ", \"errored_cells\": " + std::to_string(errored_cells) +
            ", \"golden_checked\": " +
            (opt.goldenDir.empty() ? "false" : "true") + "}\n}\n";

    if (!opt.outPath.empty()) {
        // Atomic: a report half-written when the campaign host dies
        // must not masquerade as a finished one.
        if (!cli::writeFile(opt.outPath, json)) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.outPath.c_str());
            return 2;
        }
    } else {
        std::fputs(json.c_str(), stdout);
    }

    std::fprintf(stderr,
                 "[faultcamp] %zu workloads x %zu sites: %llu faults "
                 "injected, %zu arch mismatches, %zu errored cells\n",
                 suite.size(), opt.sites.size(),
                 static_cast<unsigned long long>(total_injected),
                 arch_mismatches, errored_cells);
    // One machine-greppable verdict line; the exit status mirrors it.
    if (failures)
        std::fprintf(stderr,
                     "[faultcamp] FAILED: %d cell(s) mismatched or "
                     "errored\n",
                     failures);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Library errors must surface as catchable exceptions here, so a
    // bad flag combination reports cleanly instead of exiting from
    // the middle of the batch.
    ssmt::detail::setFatalThrows(true);
    Options opt = parseOptions(argc, argv);
    try {
        return runCampaign(opt);
    } catch (const ssmt::sim::SimError &err) {
        std::fprintf(stderr, "faultcamp: %s\n", err.what());
        return 2;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "faultcamp: %s\n", err.what());
        return 2;
    }
}
