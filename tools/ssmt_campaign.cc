/**
 * @file
 * ssmt_campaign: crash-contained, resumable experiment campaigns.
 *
 * Drives sim/campaign: a workload × mode × seed grid where every
 * finished cell is committed to a content-addressed store and an
 * fsync-per-line journal the moment it completes, so a campaign
 * killed at any instant (`kill -9` included) resumes with finished
 * cells served as cache hits and produces a manifest byte-identical
 * to an uninterrupted run. With --isolate each cell runs in a
 * sandboxed child process under optional wall-clock / address-space /
 * CPU limits, so a crashing or hanging cell becomes a typed error
 * slot while every other cell still completes.
 *
 * Subcommands:
 *   run     build a spec from flags and run (or resume) it
 *   resume  re-run from the journal's pinned spec (no spec flags)
 *   status  report journal / store / manifest state
 *   gc      delete store entries the spec no longer references
 *
 * Exit status: 0 campaign complete and every cell clean, 1 any cell
 * failed or the campaign stopped early (SIGINT / --cancel-after),
 * 2 bad usage or an invalid spec.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "sim/campaign.hh"
#include "sim/faultinject.hh"
#include "sim/fsio.hh"
#include "sim/json_text.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

/** SIGINT requests a cooperative stop: in-flight cells finish and
 *  are journaled, the rest are skipped. A second SIGINT falls back
 *  to the default disposition (the journal survives kill too). */
std::atomic<bool> g_interrupted{false};

void
onSigint(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
    std::signal(SIGINT, SIG_DFL);
}

const char kUsage[] =
    "usage: ssmt_campaign <run|resume|status|gc> --dir D [options]\n"
    "\n"
    "  run     run (or resume) the campaign described by the flags\n"
    "  resume  re-run from the journal's pinned spec; spec flags are\n"
    "          rejected so the identity cannot drift\n"
    "  status  report journal / store / manifest state\n"
    "  gc      delete store entries the spec no longer references\n"
    "\n"
    "spec (run; gc accepts the same to name the live cell set):\n"
    "  --name N              campaign name (default 'campaign')\n"
    "  --workloads a,b|all   workload axis (required for run)\n"
    "  --modes m1,m2|all     mode axis (default microthread)\n"
    "  --seeds s1,s2         fault-seed axis (default 0)\n"
    "  --scale N             workload scale (default 1)\n"
    "  --sample-interval N   metrics series capture interval\n"
    "  --max-insts N         per-cell instruction cap\n"
    "  --fault-site S --fault-count N [--fault-seed S]\n"
    "  [--fault-start C] [--fault-period P]   seeded fault plan\n"
    "\n"
    "failure policy (part of the spec):\n"
    "  --isolate             run each cell in a sandboxed child\n"
    "  --deadline-ms N       per-attempt wall deadline (isolate)\n"
    "  --mem-limit-mb N      per-child RLIMIT_AS (isolate)\n"
    "  --cpu-limit N         per-child RLIMIT_CPU seconds (isolate)\n"
    "  --retries N           retry attempts per cell\n"
    "  --budget CYCLES       watchdog cycle budget\n"
    "  --resume-watchdog     retry watchdog-expired cells from a\n"
    "                        checkpoint instead of from scratch\n"
    "  --backoff-ms N        base retry backoff (doubles per retry)\n"
    "  --crash CELL=KIND     deliberately crash a cell (test hook;\n"
    "                        kinds: segv abort oom hang exit)\n"
    "\n"
    "invocation (never part of the identity):\n"
    "  --jobs N|auto         parallel cells\n"
    "  --force               restart on a spec mismatch\n"
    "  --cancel-after N      stop after N cells finish (test hook)\n"
    "  --quiet               suppress per-cell progress lines\n"
    "  --server SOCK         submit to a running ssmt_server over\n"
    "                        its Unix socket instead of running\n"
    "                        in-process (run only); the streamed\n"
    "                        manifest is written to --dir\n";

struct Options
{
    std::string command;
    std::string dir;
    sim::CampaignSpec spec;
    bool specGiven = false; ///< any spec-shaping flag was passed
    unsigned jobs = 0;
    bool force = false;
    uint64_t cancelAfter = 0;   ///< 0 = never
    bool quiet = false;
    std::string server;         ///< non-empty: thin-client mode
};

Options
parseOptions(int argc, char **argv)
{
    cli::ArgParser args(argc, argv, kUsage,
                        {{"--dir", nullptr, true},
                         {"--name", nullptr, true},
                         {"--workloads", nullptr, true},
                         {"--modes", nullptr, true},
                         {"--seeds", nullptr, true},
                         {"--scale", nullptr, true},
                         {"--sample-interval", nullptr, true},
                         {"--max-insts", nullptr, true},
                         {"--fault-site", nullptr, true},
                         {"--fault-count", nullptr, true},
                         {"--fault-seed", nullptr, true},
                         {"--fault-start", nullptr, true},
                         {"--fault-period", nullptr, true},
                         {"--isolate", nullptr, false},
                         {"--deadline-ms", nullptr, true},
                         {"--mem-limit-mb", nullptr, true},
                         {"--cpu-limit", nullptr, true},
                         {"--retries", nullptr, true},
                         {"--budget", nullptr, true},
                         {"--resume-watchdog", nullptr, false},
                         {"--backoff-ms", nullptr, true},
                         {"--crash", nullptr, true, true},
                         {"--jobs", nullptr, true},
                         {"--force", nullptr, false},
                         {"--cancel-after", nullptr, true},
                         {"--quiet", nullptr, false},
                         {"--server", nullptr, true}});
    Options opt;
    if (args.positionals().size() != 1)
        args.fail("expected exactly one of run|resume|status|gc");
    opt.command = args.positionals()[0];
    if (opt.command != "run" && opt.command != "resume" &&
        opt.command != "status" && opt.command != "gc")
        args.fail("unknown subcommand '" + opt.command + "'");
    opt.dir = args.str("--dir");
    if (opt.dir.empty())
        args.fail(opt.command + " needs --dir DIR");

    sim::CampaignSpec &spec = opt.spec;
    for (const char *flag :
         {"--name", "--workloads", "--modes", "--seeds", "--scale",
          "--sample-interval", "--max-insts", "--fault-site",
          "--fault-count", "--fault-seed", "--fault-start",
          "--fault-period", "--isolate", "--deadline-ms",
          "--mem-limit-mb", "--cpu-limit", "--retries", "--budget",
          "--resume-watchdog", "--backoff-ms", "--crash"}) {
        if (args.has(flag)) {
            if (opt.command == "resume")
                args.fail(std::string("resume replays the journal's "
                                      "pinned spec; drop ") +
                          flag + " (or use run --force)");
            opt.specGiven = true;
        }
    }

    spec.name = args.str("--name", spec.name);
    if (args.has("--workloads"))
        spec.workloads =
            cli::expandWorkloadList(args.str("--workloads"));
    if (args.has("--modes")) {
        std::string text = args.str("--modes");
        if (text == "all") {
            spec.modes = sim::allModes();
        } else {
            for (const std::string &name : cli::splitCommas(text)) {
                sim::Mode mode;
                if (!sim::parseMode(name, &mode))
                    args.fail("unknown mode '" + name + "'");
                spec.modes.push_back(mode);
            }
        }
    }
    if (args.has("--seeds")) {
        spec.seeds.clear();
        for (const std::string &text :
             cli::splitCommas(args.str("--seeds"))) {
            char *end = nullptr;
            unsigned long long seed =
                std::strtoull(text.c_str(), &end, 10);
            if (!end || end == text.c_str() || *end != '\0')
                args.fail("--seeds needs numbers (got '" + text +
                          "')");
            spec.seeds.push_back(seed);
        }
        if (spec.seeds.empty())
            args.fail("--seeds needs at least one seed");
    }
    spec.scale = args.u64("--scale", spec.scale);
    spec.sampleInterval =
        args.u64("--sample-interval", spec.sampleInterval);
    spec.maxInsts = args.u64("--max-insts", spec.maxInsts);
    if (args.has("--fault-site")) {
        std::string name = args.str("--fault-site");
        if (!sim::parseFaultSite(name, &spec.faults.site))
            args.fail("unknown fault site '" + name + "'");
    }
    spec.faults.count = args.u64("--fault-count", spec.faults.count);
    spec.faults.seed = args.u64("--fault-seed", spec.faults.seed);
    spec.faults.startCycle =
        args.u64("--fault-start", spec.faults.startCycle);
    spec.faults.period =
        args.u64("--fault-period", spec.faults.period);
    spec.isolate = args.has("--isolate");
    spec.wallDeadlineMs =
        args.u64("--deadline-ms", spec.wallDeadlineMs);
    spec.memLimitMb = args.u64("--mem-limit-mb", spec.memLimitMb);
    spec.cpuLimitSeconds =
        args.u64("--cpu-limit", spec.cpuLimitSeconds);
    spec.maxRetries = static_cast<unsigned>(
        args.u64("--retries", spec.maxRetries));
    spec.cycleBudget = args.u64("--budget", spec.cycleBudget);
    spec.resumeOnWatchdog = args.has("--resume-watchdog");
    spec.backoffMs = static_cast<unsigned>(
        args.u64("--backoff-ms", spec.backoffMs));
    for (const std::string &text : args.all("--crash")) {
        size_t eq = text.find('=');
        if (eq == std::string::npos)
            args.fail("--crash needs CELL=KIND (got '" + text +
                      "')");
        sim::CrashKind kind;
        if (!sim::parseCrashKind(text.substr(eq + 1), &kind) ||
            kind == sim::CrashKind::None)
            args.fail("unknown crash kind '" + text.substr(eq + 1) +
                      "'");
        spec.crashes.emplace_back(text.substr(0, eq), kind);
    }

    opt.jobs = cli::jobsFlag(args, "--jobs");
    opt.force = args.has("--force");
    opt.cancelAfter = args.u64("--cancel-after", 0);
    opt.quiet = args.has("--quiet");
    opt.server = args.str("--server");
    if (!opt.server.empty() && opt.command != "run")
        args.fail("--server only applies to run (a re-submitted run "
                  "resumes naturally server-side)");
    if (!opt.server.empty() && spec.isolate)
        args.fail("--isolate campaigns cannot run via --server (the "
                  "daemon refuses fork-based isolation)");

    if (opt.command == "run" && spec.workloads.empty())
        args.fail("run needs --workloads a,b,... (or 'all')");
    if (!spec.isolate &&
        (spec.wallDeadlineMs || spec.memLimitMb ||
         spec.cpuLimitSeconds))
        args.fail("--deadline-ms/--mem-limit-mb/--cpu-limit need "
                  "--isolate");
    if (!spec.crashes.empty() && !spec.isolate)
        args.fail("--crash needs --isolate (a deliberate crash must "
                  "be contained in a child process)");
    return opt;
}

/** Load the journal's pinned spec (resume, and the gc/status
 *  fallback when no spec flags are given). */
bool
journalSpec(const std::string &dir, sim::CampaignSpec *spec,
            std::string *err)
{
    std::string path = dir + "/journal.jsonl";
    sim::JournalContents journal = sim::CampaignJournal::read(path);
    if (!journal.exists) {
        *err = "no journal at " + path;
        return false;
    }
    if (!journal.headerOk) {
        *err = "journal " + path + " has no parsable header";
        return false;
    }
    try {
        *spec = sim::parseSpec(journal.spec);
    } catch (const sim::SimError &e) {
        *err = std::string("journal spec unparsable: ") + e.what();
        return false;
    }
    return true;
}

/**
 * Thin-client mode: submit the spec to a running ssmt_server over
 * the ssmt-server-v1 line protocol, stream its progress to stderr,
 * and write the returned manifest under --dir. The spec travels as
 * its canonical JSON, so the server-side campaign directory is keyed
 * by the exact same identity a local run would pin in its journal.
 */
int
cmdRunServer(const Options &opt)
{
    cli::LineSocket sock;
    if (!sock.connectTo(opt.server)) {
        std::fprintf(stderr,
                     "ssmt_campaign: cannot connect to server at "
                     "'%s'\n",
                     opt.server.c_str());
        return 2;
    }
    sim::SnapshotWriter req;
    req.beginObject();
    req.str("schema", "ssmt-server-v1");
    req.str("cmd", "campaign");
    req.str("spec", sim::specJson(opt.spec));
    req.endObject();
    if (!sock.sendLine(req.text())) {
        std::fprintf(stderr, "ssmt_campaign: server send failed\n");
        return 2;
    }

    bool ok = false;
    bool done = false;
    std::string line;
    while (!done && sock.recvLine(&line)) {
        sim::JsonValue event;
        if (!sim::parseJson(line, event)) {
            std::fprintf(stderr,
                         "ssmt_campaign: unparsable server event\n");
            return 2;
        }
        std::string kind = event.str("event");
        if (kind == "progress") {
            if (!opt.quiet)
                std::fprintf(stderr, "[campaign] %s\n",
                             event.str("line").c_str());
        } else if (kind == "cell") {
            // Bookkeeping only: the server's progress lines already
            // narrate each cell, so re-printing would double up.
        } else if (kind == "manifest") {
            std::string path = opt.dir + "/manifest.json";
            if (sim::ensureDir(opt.dir) &&
                cli::writeFile(path, event.str("text"))) {
                if (!opt.quiet)
                    std::fprintf(stderr,
                                 "[campaign] manifest: %s\n",
                                 path.c_str());
            } else {
                std::fprintf(stderr,
                             "ssmt_campaign: cannot write %s\n",
                             path.c_str());
            }
        } else if (kind == "error") {
            std::fprintf(stderr, "ssmt_campaign: server: %s\n",
                         event.str("message").c_str());
            return 2;
        } else if (kind == "done") {
            const sim::JsonValue *okv = event.find("ok");
            ok = okv && okv->kind == sim::JsonValue::Kind::Bool &&
                 okv->boolean;
            std::fprintf(
                stderr,
                "[campaign] %llu cells: %llu cached, %llu "
                "executed, %llu failed (server %s)\n",
                static_cast<unsigned long long>(event.u64("cells")),
                static_cast<unsigned long long>(
                    event.u64("cacheHits")),
                static_cast<unsigned long long>(
                    event.u64("executed")),
                static_cast<unsigned long long>(event.u64("failed")),
                event.str("dir").c_str());
            done = true;
        }
    }
    if (!done) {
        std::fprintf(stderr,
                     "ssmt_campaign: server closed the connection "
                     "mid-campaign (it keeps running; re-submit to "
                     "stream the rest as cache hits)\n");
        return 1;
    }
    return ok ? 0 : 1;
}

int
cmdRun(const Options &opt)
{
    sim::CampaignSpec spec = opt.spec;
    if (opt.command == "resume") {
        std::string err;
        if (!journalSpec(opt.dir, &spec, &err)) {
            std::fprintf(stderr, "ssmt_campaign: %s\n", err.c_str());
            return 2;
        }
    }

    // The cancel flag is shared by SIGINT and the deterministic
    // --cancel-after test hook: the campaign checks it before
    // starting each cell.
    std::atomic<uint64_t> finished{0};
    uint64_t cancel_after = opt.cancelAfter;
    std::atomic<bool> cancel{false};
    std::signal(SIGINT, onSigint);

    sim::CampaignOptions copts;
    copts.jobs = opt.jobs;
    copts.cancel = &cancel;
    copts.force = opt.force;
    bool quiet = opt.quiet;
    copts.log = [&](const std::string &line) {
        if (!quiet)
            std::fprintf(stderr, "[campaign] %s\n", line.c_str());
        // Cell-completion lines are "<cell>: <verdict>"; only they
        // advance the --cancel-after counter.
        uint64_t done =
            line.find(": ") != std::string::npos
                ? finished.fetch_add(1, std::memory_order_relaxed) +
                      1
                : finished.load(std::memory_order_relaxed);
        if ((cancel_after && done >= cancel_after) ||
            g_interrupted.load(std::memory_order_relaxed))
            cancel.store(true, std::memory_order_relaxed);
    };
    // SIGINT before the first cell finishes must also stop early.
    if (g_interrupted.load(std::memory_order_relaxed))
        cancel.store(true, std::memory_order_relaxed);

    sim::CampaignOutcome outcome =
        sim::runCampaign(spec, opt.dir, copts);

    std::fprintf(stderr,
                 "[campaign] %zu cells: %zu cached, %zu executed, "
                 "%zu failed%s\n",
                 outcome.cells.size(), outcome.cacheHits,
                 outcome.executed, outcome.failed,
                 outcome.completed ? "" : " (stopped early)");
    if (!outcome.failureSummary.empty())
        std::fputs(outcome.failureSummary.c_str(), stderr);
    if (outcome.completed && !quiet)
        std::fprintf(stderr, "[campaign] manifest: %s\n",
                     outcome.manifestPath.c_str());
    if (g_interrupted.load(std::memory_order_relaxed))
        std::fprintf(stderr,
                     "[campaign] interrupted; rerun `ssmt_campaign "
                     "resume --dir %s` to finish\n",
                     opt.dir.c_str());
    return (outcome.completed && outcome.failed == 0) ? 0 : 1;
}

int
cmdStatus(const Options &opt)
{
    std::string path = opt.dir + "/journal.jsonl";
    sim::JournalContents journal = sim::CampaignJournal::read(path);
    if (!journal.exists) {
        std::printf("journal: none (%s)\n", path.c_str());
        return 0;
    }
    if (!journal.headerOk) {
        std::printf("journal: header unparsable (%s)\n",
                    path.c_str());
        return 1;
    }
    size_t cached = 0;
    size_t failed = 0;
    for (const sim::JournalCell &cell : journal.cells) {
        if (cell.cached)
            cached++;
        if (cell.errorCode != sim::ErrorCode::None)
            failed++;
    }
    size_t total = 0;
    std::string spec_status = "parsable";
    try {
        sim::CampaignSpec spec = sim::parseSpec(journal.spec);
        total = sim::campaignCells(spec).size();
    } catch (const sim::SimError &e) {
        spec_status = std::string("UNPARSABLE: ") + e.what();
    }
    std::printf("journal: %s\n", path.c_str());
    std::printf("spec: %s\n", spec_status.c_str());
    std::printf("cells: %zu/%zu journaled (%zu cached, %zu failed)\n",
                journal.cells.size(), total, cached, failed);
    if (journal.corruptLines)
        std::printf("corrupt mid-file lines: %zu\n",
                    journal.corruptLines);
    std::printf("ended: %s\n", journal.ended ? "yes" : "no");
    std::vector<std::string> store_keys =
        sim::ResultStore(opt.dir + "/store").list();
    std::printf("store: %zu entries\n", store_keys.size());
    // Stored results the journal never acknowledged — a nonzero lag
    // means a run died between store.save and journal.append, and
    // resume will re-serve those cells as cache hits.
    std::printf("journal lag: %zu stored-but-unjournaled\n",
                sim::journalLag(journal, store_keys));
    std::printf("manifest: %s\n",
                sim::pathExists(opt.dir + "/manifest.json")
                    ? "present"
                    : "absent");
    return 0;
}

int
cmdGc(const Options &opt)
{
    sim::CampaignSpec spec = opt.spec;
    if (!opt.specGiven) {
        std::string err;
        if (!journalSpec(opt.dir, &spec, &err)) {
            std::fprintf(stderr, "ssmt_campaign: %s\n", err.c_str());
            return 2;
        }
    }
    std::vector<std::string> removed =
        sim::campaignGc(spec, opt.dir);
    for (const std::string &key : removed)
        std::printf("removed %s\n", key.c_str());
    std::printf("gc: %zu stale entr%s removed\n", removed.size(),
                removed.size() == 1 ? "y" : "ies");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Library errors must surface as catchable exceptions so a bad
    // spec reports cleanly instead of aborting mid-campaign.
    ssmt::detail::setFatalThrows(true);
    Options opt = parseOptions(argc, argv);
    try {
        if (opt.command == "status")
            return cmdStatus(opt);
        if (opt.command == "gc")
            return cmdGc(opt);
        if (!opt.server.empty())
            return cmdRunServer(opt);
        return cmdRun(opt);
    } catch (const ssmt::sim::SimError &err) {
        std::fprintf(stderr, "ssmt_campaign: %s\n", err.what());
        return 2;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "ssmt_campaign: %s\n", err.what());
        return 2;
    }
}
