#include "cli_common.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/fsio.hh"
#include "sim/jobs.hh"

namespace ssmt
{
namespace cli
{

ArgParser::ArgParser(int argc, char **argv, std::string usage_text,
                     std::vector<FlagSpec> specs)
    : argv0_(argc > 0 ? argv[0] : "ssmt"),
      usage_(std::move(usage_text)), specs_(std::move(specs))
{
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            usage(0);
        if (arg == "--list-workloads") {
            for (const std::string &name :
                 workloads::workloadNames())
                std::printf("%s\n", name.c_str());
            std::exit(0);
        }
        const FlagSpec *spec = findSpec(arg);
        if (!spec) {
            if (!arg.empty() && arg[0] == '-') {
                std::fprintf(stderr, "%s: unknown flag '%s'\n",
                             argv0_.c_str(), arg.c_str());
                usage(2);
            }
            positionals_.push_back(arg);
            continue;
        }
        present_.insert(spec->name);
        if (!spec->takesValue)
            continue;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s needs a value\n",
                         argv0_.c_str(), arg.c_str());
            usage(2);
        }
        std::vector<std::string> &slot = values_[spec->name];
        if (!spec->repeatable)
            slot.clear();
        slot.push_back(argv[++i]);
    }
}

const FlagSpec *
ArgParser::findSpec(const std::string &arg) const
{
    for (const FlagSpec &spec : specs_) {
        if (arg == spec.name ||
            (spec.alias != nullptr && arg == spec.alias))
            return &spec;
    }
    return nullptr;
}

bool
ArgParser::has(const std::string &flag) const
{
    return present_.count(flag) > 0;
}

std::string
ArgParser::str(const std::string &flag, const std::string &def) const
{
    auto it = values_.find(flag);
    if (it == values_.end() || it->second.empty())
        return def;
    return it->second.back();
}

uint64_t
ArgParser::u64(const std::string &flag, uint64_t def) const
{
    auto it = values_.find(flag);
    if (it == values_.end() || it->second.empty())
        return def;
    const std::string &text = it->second.back();
    char *end = nullptr;
    unsigned long long parsed =
        std::strtoull(text.c_str(), &end, 10);
    if (!end || end == text.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: %s needs a number (got '%s')\n",
                     argv0_.c_str(), flag.c_str(), text.c_str());
        usage(2);
    }
    return parsed;
}

double
ArgParser::dbl(const std::string &flag, double def) const
{
    auto it = values_.find(flag);
    if (it == values_.end() || it->second.empty())
        return def;
    const std::string &text = it->second.back();
    char *end = nullptr;
    double parsed = std::strtod(text.c_str(), &end);
    if (!end || end == text.c_str() || *end != '\0') {
        std::fprintf(stderr, "%s: %s needs a number (got '%s')\n",
                     argv0_.c_str(), flag.c_str(), text.c_str());
        usage(2);
    }
    return parsed;
}

const std::vector<std::string> &
ArgParser::all(const std::string &flag) const
{
    static const std::vector<std::string> kEmpty;
    auto it = values_.find(flag);
    return it == values_.end() ? kEmpty : it->second;
}

void
ArgParser::fail(const std::string &message) const
{
    std::fprintf(stderr, "%s: %s\n", argv0_.c_str(),
                 message.c_str());
    usage(2);
}

void
ArgParser::usage(int status) const
{
    std::fputs(usage_.c_str(), stderr);
    std::exit(status);
}

unsigned
jobsFlag(const ArgParser &args, const std::string &flag)
{
    if (!args.has(flag))
        return 0;   // auto: the sim::resolveJobs chain (SSMT_JOBS...)
    if (args.str(flag) == "auto")
        return sim::hostThreads();
    uint64_t jobs = args.u64(flag);
    if (jobs == 0)
        args.fail(flag + " must be >= 1 (or 'auto')");
    return static_cast<unsigned>(jobs);
}

bpred::PredictorKind
predictorFlag(const ArgParser &args, const std::string &flag)
{
    if (!args.has(flag))
        return bpred::PredictorKind::Hybrid;
    std::string name = args.str(flag);
    bpred::PredictorKind kind;
    if (!bpred::parsePredictorKind(name, &kind)) {
        std::string known;
        for (bpred::PredictorKind k : bpred::allPredictorKinds()) {
            if (!known.empty())
                known += ", ";
            known += bpred::predictorKindName(k);
        }
        args.fail("unknown predictor '" + name + "' (accepted: " +
                  known + ")");
    }
    return kind;
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > pos)
            out.push_back(arg.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::string
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "r");
    if (!file)
        return "";
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        text.append(buf, got);
    std::fclose(file);
    return text;
}

bool
writeFile(const std::string &path, const std::string &body)
{
    // Atomic (temp + fsync + rename): an interrupted tool must never
    // leave a truncated golden/results/snapshot file behind.
    return sim::writeFileAtomic(path, body);
}

std::vector<std::string>
expandWorkloadList(const std::string &text)
{
    if (text == "all")
        return workloads::workloadNames();
    return splitCommas(text);
}

std::vector<workloads::WorkloadInfo>
resolveWorkloads(const std::vector<std::string> &names,
                 const std::string &argv0)
{
    std::vector<workloads::WorkloadInfo> out;
    out.reserve(names.size());
    for (const std::string &name : names) {
        bool found = false;
        for (const auto &info : workloads::allWorkloads()) {
            if (info.name == name) {
                out.push_back(info);
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr, "%s: unknown workload '%s'\n",
                         argv0.c_str(), name.c_str());
            std::exit(2);
        }
    }
    return out;
}

LineSocket &
LineSocket::operator=(LineSocket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buffer_ = std::move(other.buffer_);
        other.fd_ = -1;
    }
    return *this;
}

bool
LineSocket::connectTo(const std::string &path)
{
    close();
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return false;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return false;
    }
    fd_ = fd;
    return true;
}

bool
LineSocket::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed += '\n';
    const char *data = framed.data();
    size_t left = framed.size();
    while (left > 0) {
        ssize_t wrote = ::send(fd_, data, left, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += wrote;
        left -= static_cast<size_t>(wrote);
    }
    return true;
}

bool
LineSocket::recvLine(std::string *out)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            out->assign(buffer_, 0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char buf[65536];
        ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
        if (got > 0) {
            buffer_.append(buf, static_cast<size_t>(got));
            continue;
        }
        if (got < 0 && errno == EINTR)
            continue;
        return false;   // EOF or hard error mid-line
    }
}

void
LineSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

} // namespace cli
} // namespace ssmt

