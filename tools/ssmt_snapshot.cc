/**
 * @file
 * ssmt_snapshot: save, fan out and verify ssmt-snapshot-v1 machine
 * checkpoints.
 *
 * Subcommands (first positional argument):
 *
 *   save    Run workloads under one mode, checkpoint each machine at
 *           --cycle N and write <out-dir>/<workload>.snapshot.json.
 *           The default mode is baseline: a warmup snapshot taken
 *           before any mechanism state exists restores into *any*
 *           mode, because the mechanism mode is deliberately excluded
 *           from the config fingerprint.
 *
 *   fanout  Restore one warmup snapshot into every non-baseline
 *           mechanism mode and run each to completion — the paper's
 *           mode comparison without re-simulating the warmup four
 *           times. Prints one result line per mode.
 *
 *   verify  The keystone property, end to end: for every workload,
 *           run straight through (checkpointing at --cycle N), then
 *           restore that checkpoint into a fresh machine and resume
 *           to completion. The two runs must agree byte-for-byte in
 *           their canonical golden serialization and their
 *           ssmt-series-v1 metrics series; with --golden-dir the
 *           straight run is additionally required to be byte-identical
 *           to the committed golden/<workload>.json snapshot. A
 *           workload that halts before cycle N is re-checkpointed at
 *           half its actual run length so short workloads still
 *           exercise the resume path.
 *
 * Usage:
 *   ssmt_snapshot save   --cycle N [--workloads a,b,...|all]
 *                        [--mode M] [--sample-interval N]
 *                        [--out-dir D] [--jobs N]
 *   ssmt_snapshot fanout --snapshot FILE --workload NAME
 *                        [--sample-interval N] [--jobs N]
 *   ssmt_snapshot verify --cycle N [--workloads a,b,...|all]
 *                        [--golden-dir D] [--sample-interval N]
 *                        [--jobs N]
 *
 * Exit status: 0 clean, 1 verification failure or failed run, 2 bad
 * usage or unreadable input.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/sim_error.hh"
#include "sim/sim_runner.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

const char kUsage[] =
    "usage: ssmt_snapshot save   --cycle N"
    " [--workloads a,b,...|all]\n"
    "                            [--mode M] [--sample-interval N]\n"
    "                            [--predictor hybrid|tage|perceptron]\n"
    "                            [--out-dir D] [--jobs N]\n"
    "       ssmt_snapshot fanout --snapshot FILE --workload NAME\n"
    "                            [--sample-interval N] [--jobs N]\n"
    "       ssmt_snapshot verify --cycle N"
    " [--workloads a,b,...|all]\n"
    "                            [--golden-dir D]"
    " [--sample-interval N]\n"
    "                            [--jobs N]\n"
    "modes: baseline, oracle-difficult-path, microthread,\n"
    "       microthread-no-predictions, oracle-all-branches\n";

struct Options
{
    std::string command;
    std::vector<std::string> workloads;
    sim::Mode mode = sim::Mode::Baseline;
    bpred::PredictorKind predictor = bpred::PredictorKind::Hybrid;
    uint64_t cycle = 0;
    uint64_t sampleInterval = 0;
    unsigned jobs = 0;
    std::string outDir = ".";
    std::string goldenDir;
    std::string snapshotPath;
};

Options
parseOptions(int argc, char **argv)
{
    cli::ArgParser args(argc, argv, kUsage,
                        {{"--workloads", "--workload", true},
                         {"--mode", nullptr, true},
                         {"--predictor", nullptr, true},
                         {"--cycle", nullptr, true},
                         {"--sample-interval", nullptr, true},
                         {"--jobs", nullptr, true},
                         {"--out-dir", nullptr, true},
                         {"--golden-dir", nullptr, true},
                         {"--snapshot", nullptr, true}});
    if (args.positionals().size() != 1)
        args.fail("expected exactly one subcommand "
                  "(save, fanout or verify)");
    Options opt;
    opt.command = args.positionals()[0];
    if (opt.command != "save" && opt.command != "fanout" &&
        opt.command != "verify")
        args.fail("unknown subcommand '" + opt.command + "'");
    if (args.has("--workloads"))
        opt.workloads =
            cli::expandWorkloadList(args.str("--workloads"));
    if (args.has("--mode")) {
        std::string name = args.str("--mode");
        if (!sim::parseMode(name, &opt.mode))
            args.fail("unknown mode '" + name + "'");
    }
    opt.predictor = cli::predictorFlag(args);
    opt.cycle = args.u64("--cycle");
    opt.sampleInterval =
        args.u64("--sample-interval", opt.sampleInterval);
    if (args.has("--jobs")) {
        uint64_t jobs = args.u64("--jobs");
        if (jobs == 0)
            args.fail("--jobs must be >= 1");
        opt.jobs = static_cast<unsigned>(jobs);
    }
    opt.outDir = args.str("--out-dir", opt.outDir);
    opt.goldenDir = args.str("--golden-dir");
    opt.snapshotPath = args.str("--snapshot");

    if (opt.command == "fanout") {
        if (opt.snapshotPath.empty())
            args.fail("fanout needs --snapshot FILE");
        if (opt.workloads.size() != 1)
            args.fail("fanout needs --workload NAME (exactly one)");
    } else {
        if (opt.cycle == 0)
            args.fail(opt.command + " needs --cycle N (N >= 1)");
        if (opt.workloads.empty())
            opt.workloads = workloads::workloadNames();
    }
    return opt;
}

/** The structural config every subcommand simulates under: the
 *  pinned golden machine, with only the mode / observability knobs
 *  (fingerprint-relevant sampleInterval included) varied. */
sim::MachineConfig
makeConfig(const Options &opt, sim::Mode mode)
{
    sim::MachineConfig cfg = sim::goldenMachineConfig();
    cfg.mode = mode;
    cfg.predictor = opt.predictor;
    cfg.sampleInterval = opt.sampleInterval;
    return cfg;
}

/**
 * Run @p prog straight through, checkpointing at @p cycle. When the
 * run halts before the checkpoint fires (short workload), rerun with
 * the checkpoint at half the observed run length. @return the cycle
 * the snapshot was actually captured at (0 = even the fallback could
 * not produce one).
 */
uint64_t
runWithSnapshot(const isa::Program &prog,
                const sim::MachineConfig &cfg,
                const std::string &label, uint64_t cycle,
                sim::Stats &stats, sim::RunArtifacts &artifacts)
{
    stats = sim::runProgramChecked(prog, cfg, label, 0, nullptr,
                                   &artifacts, cycle);
    if (!artifacts.snapshot.empty())
        return artifacts.snapshotCycle;
    uint64_t fallback = stats.cycles / 2;
    if (fallback == 0)
        return 0;
    stats = sim::runProgramChecked(prog, cfg, label, 0, nullptr,
                                   &artifacts, fallback);
    return artifacts.snapshot.empty() ? 0 : artifacts.snapshotCycle;
}

int
runSave(const Options &opt)
{
    std::vector<workloads::WorkloadInfo> suite =
        cli::resolveWorkloads(opt.workloads, "ssmt_snapshot");
    sim::MachineConfig cfg = makeConfig(opt, opt.mode);

    std::vector<std::string> errors(suite.size());
    sim::BatchRunner runner(opt.jobs);
    runner.forEach(suite.size(), [&](size_t i) {
        const std::string &name = suite[i].name;
        try {
            sim::Stats stats;
            sim::RunArtifacts artifacts;
            uint64_t at = runWithSnapshot(suite[i].make({}), cfg,
                                          name, opt.cycle, stats,
                                          artifacts);
            if (at == 0) {
                errors[i] = "run too short to checkpoint";
                return;
            }
            std::string path =
                opt.outDir + "/" + name + ".snapshot.json";
            if (!cli::writeFile(path, artifacts.snapshot)) {
                errors[i] = "cannot write " + path;
                return;
            }
            std::printf("%s: snapshot at cycle %llu (%zu bytes, "
                        "mode %s) -> %s\n",
                        name.c_str(),
                        static_cast<unsigned long long>(at),
                        artifacts.snapshot.size(),
                        sim::modeName(cfg.mode), path.c_str());
        } catch (const std::exception &err) {
            errors[i] = err.what();
        }
    });

    int failures = 0;
    for (size_t i = 0; i < suite.size(); i++) {
        if (errors[i].empty())
            continue;
        std::fprintf(stderr, "%s: %s\n", suite[i].name.c_str(),
                     errors[i].c_str());
        failures++;
    }
    return failures ? 1 : 0;
}

int
runFanout(const Options &opt)
{
    std::string snapshot = cli::readFile(opt.snapshotPath);
    if (snapshot.empty()) {
        std::fprintf(stderr, "cannot read %s\n",
                     opt.snapshotPath.c_str());
        return 2;
    }
    std::vector<workloads::WorkloadInfo> suite =
        cli::resolveWorkloads(opt.workloads, "ssmt_snapshot");
    isa::Program prog = suite[0].make({});

    const sim::Mode fan[] = {sim::Mode::OracleDifficultPath,
                             sim::Mode::Microthread,
                             sim::Mode::MicrothreadNoPredictions,
                             sim::Mode::OracleAllBranches};
    const size_t n = sizeof(fan) / sizeof(fan[0]);
    std::vector<sim::Stats> stats(n);
    std::vector<std::string> errors(n);
    sim::BatchRunner runner(opt.jobs);
    runner.forEach(n, [&](size_t i) {
        try {
            sim::MachineConfig cfg = makeConfig(opt, fan[i]);
            std::string label = suite[0].name + "/" +
                                sim::modeName(fan[i]);
            stats[i] = sim::runProgramChecked(
                prog, cfg, label, 0, nullptr, nullptr, 0, &snapshot);
        } catch (const std::exception &err) {
            errors[i] = err.what();
        }
    });

    std::printf("fanout %s from %s (captured at cycle %llu)\n",
                suite[0].name.c_str(), opt.snapshotPath.c_str(),
                static_cast<unsigned long long>(
                    sim::snapshotCycle(snapshot)));
    int failures = 0;
    for (size_t i = 0; i < n; i++) {
        if (!errors[i].empty()) {
            std::fprintf(stderr, "%s: %s\n", sim::modeName(fan[i]),
                         errors[i].c_str());
            failures++;
            continue;
        }
        std::printf("  %-28s cycles %-10llu retired %-10llu "
                    "usedMispredicts %llu\n",
                    sim::modeName(fan[i]),
                    static_cast<unsigned long long>(stats[i].cycles),
                    static_cast<unsigned long long>(
                        stats[i].retiredInsts),
                    static_cast<unsigned long long>(
                        stats[i].usedMispredicts));
    }
    return failures ? 1 : 0;
}

int
runVerify(const Options &opt)
{
    std::vector<workloads::WorkloadInfo> suite =
        cli::resolveWorkloads(opt.workloads, "ssmt_snapshot");
    // Verification runs under the pinned golden config so the
    // straight-through run can be held against the committed
    // golden/ snapshots too.
    sim::MachineConfig cfg =
        makeConfig(opt, sim::goldenMachineConfig().mode);

    std::vector<std::string> errors(suite.size());
    std::vector<std::string> notes(suite.size());
    sim::BatchRunner runner(opt.jobs);
    runner.forEach(suite.size(), [&](size_t i) {
        const std::string &name = suite[i].name;
        try {
            isa::Program prog = suite[i].make({});

            sim::Stats straight;
            sim::RunArtifacts straightArt;
            uint64_t at =
                runWithSnapshot(prog, cfg, name, opt.cycle, straight,
                                straightArt);
            if (at == 0) {
                errors[i] = "run too short to checkpoint";
                return;
            }

            sim::RunArtifacts resumedArt;
            sim::Stats resumed = sim::runProgramChecked(
                prog, cfg, name + "/resumed", 0, nullptr,
                &resumedArt, 0, &straightArt.snapshot);

            std::string straightGolden = sim::goldenJson(
                {name, sim::kGoldenConfigName, straight});
            std::string resumedGolden = sim::goldenJson(
                {name, sim::kGoldenConfigName, resumed});
            if (straightGolden != resumedGolden) {
                errors[i] = "resumed golden stats differ from "
                            "straight-through run";
                return;
            }
            if (sim::seriesJson(straightArt.series) !=
                sim::seriesJson(resumedArt.series)) {
                errors[i] = "resumed metrics series differs from "
                            "straight-through run";
                return;
            }
            if (!opt.goldenDir.empty()) {
                std::string path = opt.goldenDir + "/" +
                                   sim::goldenFileName(name);
                std::string want = cli::readFile(path);
                if (want.empty()) {
                    errors[i] = "cannot read " + path;
                    return;
                }
                if (straightGolden != want) {
                    errors[i] = "straight-through golden stats "
                                "differ from committed " + path;
                    return;
                }
            }
            notes[i] =
                "verified at cycle " + std::to_string(at) + " (" +
                std::to_string(straightArt.snapshot.size()) +
                "-byte snapshot, golden + series byte-identical" +
                (opt.goldenDir.empty() ? ")"
                                       : ", matches committed)");
        } catch (const std::exception &err) {
            errors[i] = err.what();
        }
    });

    int failures = 0;
    for (size_t i = 0; i < suite.size(); i++) {
        if (!errors[i].empty()) {
            std::fprintf(stderr, "VERIFY FAIL %s: %s\n",
                         suite[i].name.c_str(), errors[i].c_str());
            failures++;
        } else {
            std::printf("%s: %s\n", suite[i].name.c_str(),
                        notes[i].c_str());
        }
    }
    std::printf("[snapshot-verify] %zu workloads, %d failure%s\n",
                suite.size(), failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Library panics must surface as catchable exceptions so one bad
    // cell reports cleanly instead of aborting the whole sweep.
    ssmt::detail::setFatalThrows(true);
    Options opt = parseOptions(argc, argv);
    try {
        if (opt.command == "save")
            return runSave(opt);
        if (opt.command == "fanout")
            return runFanout(opt);
        return runVerify(opt);
    } catch (const sim::SimError &err) {
        std::fprintf(stderr, "ssmt_snapshot: %s\n", err.what());
        return 2;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "ssmt_snapshot: %s\n", err.what());
        return 2;
    }
}
