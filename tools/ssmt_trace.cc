/**
 * @file
 * ssmt_trace: run registered workloads with the observability layer
 * switched on and write the captured artifacts —
 *
 *   <out-dir>/<workload>.series.json   interval time-series +
 *                                      occupancy histograms
 *                                      (schema ssmt-series-v1)
 *   <out-dir>/<workload>.trace.json    Chrome trace-event JSON;
 *                                      load via Perfetto
 *                                      (ui.perfetto.dev) or
 *                                      chrome://tracing
 *   <out-dir>/<workload>.trace.jsonl   with --jsonl: every pipeline
 *                                      event streamed as one JSON
 *                                      line (unbounded capture)
 *
 * Both artifacts are deterministic: identical (workload, config,
 * scale, seed) runs produce byte-identical files regardless of
 * --jobs, because each simulation is an isolated single-threaded
 * core and sampling happens at fixed cycle multiples.
 *
 * Usage:
 *   ssmt_trace --workload a[,b,...]|all [--mode M]
 *              [--sample-interval N] [--trace-capacity N]
 *              [--scale N] [--seed S] [--jobs N] [--out-dir D]
 *              [--jsonl]
 *
 * Exit status: 0 clean, 1 simulation or I/O failure, 2 bad usage.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "cpu/trace.hh"
#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/metrics.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

struct Options
{
    std::vector<std::string> workloads;
    sim::Mode mode = sim::Mode::Microthread;
    bpred::PredictorKind predictor = bpred::PredictorKind::Hybrid;
    uint64_t sampleInterval = 1000;
    size_t traceCapacity = 65536;
    uint64_t scale = 1;
    uint64_t seed = 0x5eed;
    unsigned jobs = 0;
    std::string outDir = ".";
    bool jsonl = false;
};

const char kUsage[] =
    "usage: ssmt_trace --workload a[,b,...]|all [--mode M]\n"
    "          [--predictor hybrid|tage|perceptron]\n"
    "          [--sample-interval N] [--trace-capacity N]\n"
    "          [--scale N] [--seed S] [--jobs N] [--out-dir D]\n"
    "          [--jsonl] [--list-workloads]\n"
    "modes: baseline, oracle-difficult-path, microthread,\n"
    "       microthread-no-predictions, oracle-all-branches\n";

Options
parseOptions(int argc, char **argv)
{
    cli::ArgParser args(argc, argv, kUsage,
                        {{"--workload", "--workloads", true},
                         {"--mode", nullptr, true},
                         {"--predictor", nullptr, true},
                         {"--sample-interval", nullptr, true},
                         {"--trace-capacity", nullptr, true},
                         {"--scale", nullptr, true},
                         {"--seed", nullptr, true},
                         {"--jobs", nullptr, true},
                         {"--out-dir", nullptr, true},
                         {"--jsonl"}});
    if (!args.positionals().empty())
        args.fail("unexpected argument '" + args.positionals()[0] +
                  "'");
    Options opt;
    if (args.has("--mode")) {
        std::string name = args.str("--mode");
        if (!sim::parseMode(name, &opt.mode))
            args.fail("unknown mode '" + name + "'");
    }
    opt.predictor = cli::predictorFlag(args);
    opt.sampleInterval =
        args.u64("--sample-interval", opt.sampleInterval);
    opt.traceCapacity = static_cast<size_t>(
        args.u64("--trace-capacity", opt.traceCapacity));
    opt.scale = args.u64("--scale", opt.scale);
    if (opt.scale == 0)
        args.fail("--scale must be >= 1");
    opt.seed = args.u64("--seed", opt.seed);
    if (args.has("--jobs")) {
        uint64_t jobs = args.u64("--jobs");
        if (jobs == 0)
            args.fail("--jobs must be >= 1");
        opt.jobs = static_cast<unsigned>(jobs);
    }
    opt.outDir = args.str("--out-dir", opt.outDir);
    opt.jsonl = args.has("--jsonl");
    if (!args.has("--workload"))
        args.fail("--workload is required");
    opt.workloads =
        cli::expandWorkloadList(args.str("--workload"));
    if (opt.workloads.empty())
        args.fail("--workload is required");
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);

    // The golden machine config keeps these artifacts comparable with
    // the committed snapshots; only the observability knobs (and any
    // explicit --mode) differ.
    sim::MachineConfig cfg = sim::goldenMachineConfig();
    cfg.mode = opt.mode;
    cfg.predictor = opt.predictor;
    cfg.sampleInterval = opt.sampleInterval;
    cfg.traceCapacity = opt.traceCapacity;

    workloads::WorkloadParams params;
    params.scale = opt.scale;
    params.seed = opt.seed;

    std::vector<sim::BatchJob> batch;
    batch.reserve(opt.workloads.size());
    for (const std::string &name : opt.workloads) {
        bool found = false;
        for (const auto &info : workloads::allWorkloads()) {
            if (info.name == name) {
                sim::MachineConfig job_cfg = cfg;
                if (opt.jsonl) {
                    job_cfg.tracePath =
                        opt.outDir + "/" + name + ".trace.jsonl";
                }
                batch.push_back({name, info.make(params), job_cfg});
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         name.c_str());
            return 2;
        }
    }

    sim::BatchRunner runner(opt.jobs);
    std::vector<sim::BatchResult> results = runner.run(batch);

    int failures = 0;
    for (size_t i = 0; i < results.size(); i++) {
        const std::string &name = batch[i].name;
        const sim::BatchResult &result = results[i];
        if (!result.ok()) {
            std::fprintf(stderr, "%s: simulation failed: %s\n",
                         name.c_str(), result.error.c_str());
            failures++;
            continue;
        }

        std::string config_name = sim::modeName(batch[i].config.mode);
        if (opt.sampleInterval > 0) {
            std::string path =
                opt.outDir + "/" + name + ".series.json";
            if (!sim::writeSeriesFile(path, result.artifacts.series,
                                      name, config_name)) {
                std::fprintf(stderr, "%s: cannot write %s\n",
                             name.c_str(), path.c_str());
                failures++;
                continue;
            }
            std::printf("%s: %zu samples (interval %llu) -> %s\n",
                        name.c_str(),
                        result.artifacts.series.samples.size(),
                        static_cast<unsigned long long>(
                            result.artifacts.series.interval),
                        path.c_str());
        }
        if (opt.traceCapacity > 0) {
            std::string path =
                opt.outDir + "/" + name + ".trace.json";
            if (!cli::writeFile(path,
                                cpu::chromeTraceJson(
                                    result.artifacts.trace))) {
                std::fprintf(stderr, "%s: cannot write %s\n",
                             name.c_str(), path.c_str());
                failures++;
                continue;
            }
            std::printf("%s: %zu trace records -> %s\n", name.c_str(),
                        result.artifacts.trace.size(), path.c_str());
        }
        if (opt.jsonl) {
            std::printf("%s: JSONL stream -> %s\n", name.c_str(),
                        batch[i].config.tracePath.c_str());
        }
    }

    if (failures) {
        std::fputs(sim::BatchRunner::failureSummary(batch, results)
                       .c_str(),
                   stderr);
        return 1;
    }
    return 0;
}
