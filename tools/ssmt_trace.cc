/**
 * @file
 * ssmt_trace: run registered workloads with the observability layer
 * switched on and write the captured artifacts —
 *
 *   <out-dir>/<workload>.series.json   interval time-series +
 *                                      occupancy histograms
 *                                      (schema ssmt-series-v1)
 *   <out-dir>/<workload>.trace.json    Chrome trace-event JSON;
 *                                      load via Perfetto
 *                                      (ui.perfetto.dev) or
 *                                      chrome://tracing
 *   <out-dir>/<workload>.trace.jsonl   with --jsonl: every pipeline
 *                                      event streamed as one JSON
 *                                      line (unbounded capture)
 *
 * Both artifacts are deterministic: identical (workload, config,
 * scale, seed) runs produce byte-identical files regardless of
 * --jobs, because each simulation is an isolated single-threaded
 * core and sampling happens at fixed cycle multiples.
 *
 * Usage:
 *   ssmt_trace --workload a[,b,...]|all [--mode M]
 *              [--sample-interval N] [--trace-capacity N]
 *              [--scale N] [--seed S] [--jobs N] [--out-dir D]
 *              [--jsonl]
 *
 * Exit status: 0 clean, 1 simulation or I/O failure, 2 bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "sim/batch_runner.hh"
#include "sim/golden.hh"
#include "sim/metrics.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ssmt;

struct Options
{
    std::vector<std::string> workloads;
    sim::Mode mode = sim::Mode::Microthread;
    uint64_t sampleInterval = 1000;
    size_t traceCapacity = 65536;
    uint64_t scale = 1;
    uint64_t seed = 0x5eed;
    unsigned jobs = 0;
    std::string outDir = ".";
    bool jsonl = false;
};

[[noreturn]] void
usage(const char *argv0, int status)
{
    std::fprintf(
        stderr,
        "usage: %s --workload a[,b,...]|all [--mode M]\n"
        "          [--sample-interval N] [--trace-capacity N]\n"
        "          [--scale N] [--seed S] [--jobs N] [--out-dir D]\n"
        "          [--jsonl]\n"
        "modes: baseline, oracle-difficult-path, microthread,\n"
        "       microthread-no-predictions, oracle-all-branches\n",
        argv0);
    std::exit(status);
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > pos)
            out.push_back(arg.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
parseMode(const std::string &name, sim::Mode &out)
{
    const sim::Mode all[] = {
        sim::Mode::Baseline, sim::Mode::OracleDifficultPath,
        sim::Mode::Microthread, sim::Mode::MicrothreadNoPredictions,
        sim::Mode::OracleAllBranches};
    for (sim::Mode mode : all) {
        if (name == sim::modeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--workload" || arg == "--workloads") {
            opt.workloads = splitCommas(value());
        } else if (arg == "--mode") {
            std::string name = value();
            if (!parseMode(name, opt.mode)) {
                std::fprintf(stderr, "%s: unknown mode '%s'\n",
                             argv[0], name.c_str());
                usage(argv[0], 2);
            }
        } else if (arg == "--sample-interval") {
            opt.sampleInterval =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--trace-capacity") {
            opt.traceCapacity = static_cast<size_t>(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (arg == "--scale") {
            opt.scale = std::strtoull(value().c_str(), nullptr, 10);
            if (opt.scale == 0)
                usage(argv[0], 2);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--jobs") {
            long parsed = std::strtol(value().c_str(), nullptr, 10);
            if (parsed <= 0)
                usage(argv[0], 2);
            opt.jobs = static_cast<unsigned>(parsed);
        } else if (arg == "--out-dir") {
            opt.outDir = value();
        } else if (arg == "--jsonl") {
            opt.jsonl = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    if (opt.workloads.empty()) {
        std::fprintf(stderr, "%s: --workload is required\n", argv[0]);
        usage(argv[0], 2);
    }
    if (opt.workloads.size() == 1 && opt.workloads[0] == "all")
        opt.workloads = workloads::workloadNames();
    return opt;
}

bool
writeFile(const std::string &path, const std::string &body)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    size_t written = std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    return written == body.size();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);

    // The golden machine config keeps these artifacts comparable with
    // the committed snapshots; only the observability knobs (and any
    // explicit --mode) differ.
    sim::MachineConfig cfg = sim::goldenMachineConfig();
    cfg.mode = opt.mode;
    cfg.sampleInterval = opt.sampleInterval;
    cfg.traceCapacity = opt.traceCapacity;

    workloads::WorkloadParams params;
    params.scale = opt.scale;
    params.seed = opt.seed;

    std::vector<sim::BatchJob> batch;
    batch.reserve(opt.workloads.size());
    for (const std::string &name : opt.workloads) {
        bool found = false;
        for (const auto &info : workloads::allWorkloads()) {
            if (info.name == name) {
                sim::MachineConfig job_cfg = cfg;
                if (opt.jsonl) {
                    job_cfg.tracePath =
                        opt.outDir + "/" + name + ".trace.jsonl";
                }
                batch.push_back({name, info.make(params), job_cfg});
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         name.c_str());
            return 2;
        }
    }

    sim::BatchRunner runner(opt.jobs);
    std::vector<sim::BatchResult> results = runner.run(batch);

    int failures = 0;
    for (size_t i = 0; i < results.size(); i++) {
        const std::string &name = batch[i].name;
        const sim::BatchResult &result = results[i];
        if (!result.ok()) {
            std::fprintf(stderr, "%s: simulation failed: %s\n",
                         name.c_str(), result.error.c_str());
            failures++;
            continue;
        }

        std::string config_name = sim::modeName(batch[i].config.mode);
        if (opt.sampleInterval > 0) {
            std::string path =
                opt.outDir + "/" + name + ".series.json";
            if (!sim::writeSeriesFile(path, result.artifacts.series,
                                      name, config_name)) {
                std::fprintf(stderr, "%s: cannot write %s\n",
                             name.c_str(), path.c_str());
                failures++;
                continue;
            }
            std::printf("%s: %zu samples (interval %llu) -> %s\n",
                        name.c_str(),
                        result.artifacts.series.samples.size(),
                        static_cast<unsigned long long>(
                            result.artifacts.series.interval),
                        path.c_str());
        }
        if (opt.traceCapacity > 0) {
            std::string path =
                opt.outDir + "/" + name + ".trace.json";
            if (!writeFile(path,
                           cpu::chromeTraceJson(
                               result.artifacts.trace))) {
                std::fprintf(stderr, "%s: cannot write %s\n",
                             name.c_str(), path.c_str());
                failures++;
                continue;
            }
            std::printf("%s: %zu trace records -> %s\n", name.c_str(),
                        result.artifacts.trace.size(), path.c_str());
        }
        if (opt.jsonl) {
            std::printf("%s: JSONL stream -> %s\n", name.c_str(),
                        batch[i].config.tracePath.c_str());
        }
    }

    if (failures) {
        std::fputs(sim::BatchRunner::failureSummary(batch, results)
                       .c_str(),
                   stderr);
        return 1;
    }
    return 0;
}
