/**
 * @file
 * Shared command-line plumbing for the ssmt_* tools.
 *
 * Every tool used to carry its own copy of the same argv loop,
 * usage() trampoline, readFile() and comma-splitter; this header is
 * the single implementation. An ArgParser is constructed from a flag
 * table and handles, uniformly across tools:
 *
 *   - value flags ("--golden-dir D"), boolean flags ("--update"),
 *     repeatable flags (every occurrence kept, e.g. --allow),
 *     aliases ("--workload" / "--workloads"), and positionals,
 *   - `--help` / `-h`: print usage, exit 0,
 *   - `--list-workloads`: print every registered workload name (one
 *     per line), exit 0 — so scripts can enumerate the suite without
 *     parsing any other tool output,
 *   - diagnostics: unknown flags, missing values and malformed
 *     numbers print to stderr and exit 2 (the shared "bad usage"
 *     status).
 *
 * Plus the tool-side helpers the parsers feed: splitCommas,
 * readFile/writeFile, and workload-name resolution against the
 * registry ("all" expands to the full suite; unknown names exit 2).
 */

#ifndef SSMT_TOOLS_CLI_COMMON_HH
#define SSMT_TOOLS_CLI_COMMON_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bpred/direction_predictor.hh"
#include "workloads/workloads.hh"

namespace ssmt
{
namespace cli
{

/** One flag a tool accepts. */
struct FlagSpec
{
    const char *name;            ///< canonical spelling, e.g. "--jobs"
    const char *alias = nullptr; ///< optional second spelling
    bool takesValue = false;
    /** true: keep every occurrence (see ArgParser::all); false: the
     *  last occurrence wins (the usual CLI override behavior). */
    bool repeatable = false;
};

class ArgParser
{
  public:
    /**
     * Parse @p argv against @p specs. Exits directly for the
     * built-ins (--help: usage to stderr, status 0;
     * --list-workloads: workload names to stdout, status 0) and for
     * parse errors (status 2). Arguments not starting with '-' are
     * collected as positionals.
     */
    ArgParser(int argc, char **argv, std::string usage_text,
              std::vector<FlagSpec> specs);

    const std::string &argv0() const { return argv0_; }

    /** True when the flag (canonical name) appeared at all. */
    bool has(const std::string &flag) const;

    /** Last value of @p flag, or @p def when absent. */
    std::string str(const std::string &flag,
                    const std::string &def = "") const;

    /** Last value of @p flag parsed as a decimal uint64_t
     *  (malformed text exits 2), or @p def when absent. */
    uint64_t u64(const std::string &flag, uint64_t def = 0) const;

    /** Last value of @p flag parsed as a double (exits 2 on
     *  malformed text), or @p def when absent. */
    double dbl(const std::string &flag, double def = 0.0) const;

    /** Every value of a repeatable flag, in order (empty if none). */
    const std::vector<std::string> &
    all(const std::string &flag) const;

    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Print "<argv0>: <message>" to stderr, then usage, exit 2. */
    [[noreturn]] void fail(const std::string &message) const;

    /** Print the usage text to stderr and exit with @p status. */
    [[noreturn]] void usage(int status) const;

  private:
    std::string argv0_;
    std::string usage_;
    std::vector<FlagSpec> specs_;
    std::set<std::string> present_;
    std::map<std::string, std::vector<std::string>> values_;
    std::vector<std::string> positionals_;

    const FlagSpec *findSpec(const std::string &arg) const;
};

/**
 * Resolve a `--jobs N|auto` flag. The default (flag absent) and the
 * explicit "auto" spelling both mean "use every core": auto maps to
 * sim::hostThreads(), an absent flag defers to the shared
 * sim::resolveJobs chain (SSMT_JOBS, then host cores) so the
 * environment override keeps working. A literal 0 or malformed
 * number exits 2.
 */
unsigned jobsFlag(const ArgParser &args,
                  const std::string &flag = "--jobs");

/**
 * Resolve a `--predictor NAME` flag into a direction-backend kind
 * (hybrid, tage, perceptron — see bpred::parsePredictorKind). The
 * flag absent means the default hybrid; an unknown name exits 2.
 * Note snapshots fingerprint the backend, so artifacts produced
 * under different --predictor values never cross-restore.
 */
bpred::PredictorKind
predictorFlag(const ArgParser &args,
              const std::string &flag = "--predictor");

/** Split "a,b,c" into {"a","b","c"}, dropping empty segments. */
std::vector<std::string> splitCommas(const std::string &arg);

/** Whole file as a string; "" when unreadable (callers that need to
 *  distinguish should stat first — no tool here does). */
std::string readFile(const std::string &path);

/** Write @p body to @p path. @return true when fully written. */
bool writeFile(const std::string &path, const std::string &body);

/** Expand a --workloads argument: "all" becomes every registered
 *  name, anything else is comma-split verbatim. */
std::vector<std::string> expandWorkloadList(const std::string &text);

/** Resolve names to registry entries, preserving order. Unknown
 *  names print a diagnostic and exit 2. */
std::vector<workloads::WorkloadInfo>
resolveWorkloads(const std::vector<std::string> &names,
                 const std::string &argv0);

/**
 * A line-delimited message stream over a Unix-domain socket: the
 * client side of the ssmt-server-v1 wire protocol (DESIGN.md §9) and
 * the server's per-connection transport. One message = one JSON
 * object = one '\n'-terminated line; recvLine() buffers partial
 * reads, sendLine() appends the terminator and retries short writes.
 * SIGPIPE is suppressed per-send (MSG_NOSIGNAL), so a vanished peer
 * surfaces as a false return, never a signal.
 */
class LineSocket
{
  public:
    LineSocket() = default;
    /** Adopt an already-connected fd (server side). */
    explicit LineSocket(int fd) : fd_(fd) {}
    ~LineSocket() { close(); }

    LineSocket(LineSocket &&other) noexcept
        : fd_(other.fd_), buffer_(std::move(other.buffer_))
    {
        other.fd_ = -1;
    }
    LineSocket &operator=(LineSocket &&other) noexcept;
    LineSocket(const LineSocket &) = delete;
    LineSocket &operator=(const LineSocket &) = delete;

    /** Connect to the Unix socket at @p path. @return false (with
     *  errno intact) on failure. */
    bool connectTo(const std::string &path);

    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Send @p line + '\n'. @return false when the peer is gone. */
    bool sendLine(const std::string &line);

    /** Receive the next line (terminator stripped) into @p out.
     *  Blocks. @return false on EOF/error with no complete line. */
    bool recvLine(std::string *out);

    void close();

  private:
    int fd_ = -1;
    std::string buffer_;    ///< bytes past the last returned line
};

} // namespace cli
} // namespace ssmt

#endif // SSMT_TOOLS_CLI_COMMON_HH

